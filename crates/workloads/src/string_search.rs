//! `string_search` — DFA scan for `"MICRO"` (Table 3).
//!
//! "One PE reads four-byte words from memory and forwards them to a
//! second PE, which breaks these words into bytes. This second PE
//! forwards those bytes to a third PE (the worker) which interprets
//! each as an ASCII character. This third string matching PE scans the
//! stream for the string `MICRO` using a small DFA hard-coded in TI
//! assembly. This PE emits zeros in all states except the match state
//! in which it emits a one, resulting in an output array in memory
//! which gives the indices of these occurrences of `MICRO`."
//!
//! Three PEs, as the paper describes: PE 0 streams word addresses,
//! PE 1 splits words into bytes, and PE 2 (the worker) runs the DFA,
//! streaming one 0/1 per byte to a sequential write port that builds
//! the output array in memory.

use tia_asm::assemble;
use tia_fabric::{
    InputRef, Memory, OutputRef, ProcessingElement, ReadPort, SequentialWritePort, System,
    DEFAULT_LOAD_LATENCY,
};
use tia_isa::Params;

use crate::build::{Built, PeFactory, WorkloadError};
use crate::golden;
use crate::phases::{goto, pattern, update, when};
use crate::streamer::streamer_program;

/// The needle the DFA is hard-coded for.
pub const NEEDLE: &[u8] = b"MICRO";

/// Configuration for the `string_search` workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StringSearchConfig {
    /// Text length in bytes (must be a multiple of 4).
    pub text_bytes: usize,
    /// Occurrences of the needle planted in the random text.
    pub plants: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl StringSearchConfig {
    /// Paper-scale run.
    pub fn paper() -> Self {
        StringSearchConfig {
            text_bytes: 16_384,
            plants: 64,
            seed: 0x5ea6c,
        }
    }

    /// Small configuration for fast tests.
    pub fn test() -> Self {
        StringSearchConfig {
            text_bytes: 256,
            plants: 6,
            seed: 0x5ea6c,
        }
    }
}

/// The word-splitter PE: four little-endian bytes per word, EOS
/// forwarded. Phase on `p2..p4`.
fn splitter_source(params: &Params) -> String {
    let n = params.num_preds;
    const PH: [usize; 3] = [2, 3, 4];
    let w = |v: u32| when(n, &PH, v, &[]);
    let g = |v: u32| goto(n, &PH, v, &[]);
    format!(
        "# word-to-byte splitter (little endian)
         when %p == {p0} with %i0.1: mov %o0.1, 0; deq %i0; set %p = {g7};
         when %p == {p7}: halt;
         when %p == {p0} with %i0.0: and %o0.0, %i0, 255; set %p = {g1};
         when %p == {p1} with %i0.0: srl %r0, %i0, 8; deq %i0; set %p = {g2};
         when %p == {p2}: and %o0.0, %r0, 255; set %p = {g3};
         when %p == {p3}: srl %r0, %r0, 8; set %p = {g4};
         when %p == {p4}: and %o0.0, %r0, 255; set %p = {g5};
         when %p == {p5}: srl %r0, %r0, 8; set %p = {g6};
         when %p == {p6}: mov %o0.0, %r0; set %p = {g0};",
        p0 = w(0),
        g7 = g(7),
        p7 = w(7),
        g1 = g(1),
        p1 = w(1),
        g2 = g(2),
        p2 = w(2),
        g3 = g(3),
        p3 = w(3),
        g4 = g(4),
        p4 = w(4),
        g5 = g(5),
        p5 = w(5),
        g6 = g(6),
        p6 = w(6),
        g0 = g(0),
    )
}

/// The DFA worker. Predicate roles: `p0` = act flag (0 = compare
/// phase), `p1` = comparison result, `p2..p4` = DFA state (0–4),
/// `p6` = retry-as-'M' flag. Priority resolves the "state ≠ 0"
/// fallback: the state-0 mismatch instruction shadows the generic one.
fn matcher_source(params: &Params) -> String {
    let n = params.num_preds;
    const ST: [usize; 3] = [2, 3, 4];
    let cmp = |s: u32| {
        // compare phase in state s: p0=0, p6=0, state=s
        when(n, &ST, s, &[(0, false), (6, false)])
    };
    let act = |s: u32, m: bool| {
        // act phase: p0=1, p6=0, p1=m, state=s
        when(n, &ST, s, &[(0, true), (6, false), (1, m)])
    };
    let to_compare_state = |s: u32| goto(n, &ST, s, &[(0, false), (6, false)]);
    let to_act = update(n, &[(0, true)]);
    let chars: Vec<u32> = NEEDLE.iter().map(|&c| c as u32).collect();
    format!(
        "# \"MICRO\" DFA. Emits one 0/1 per input byte.
         when %p == {c0} with %i0.0: eq %p1, %i0, {m}; set %p = {to_act};
         when %p == {c1} with %i0.0: eq %p1, %i0, {i}; set %p = {to_act};
         when %p == {c2} with %i0.0: eq %p1, %i0, {c}; set %p = {to_act};
         when %p == {c3} with %i0.0: eq %p1, %i0, {r}; set %p = {to_act};
         when %p == {c4} with %i0.0: eq %p1, %i0, {o}; set %p = {to_act};
         when %p == {a0} with %i0.0: mov %o0.0, 0; deq %i0; set %p = {g1};
         when %p == {a1} with %i0.0: mov %o0.0, 0; deq %i0; set %p = {g2};
         when %p == {a2} with %i0.0: mov %o0.0, 0; deq %i0; set %p = {g3};
         when %p == {a3} with %i0.0: mov %o0.0, 0; deq %i0; set %p = {g4};
         when %p == {a4} with %i0.0: mov %o0.0, 1; deq %i0; set %p = {g0};
         when %p == {m0} with %i0.0: mov %o0.0, 0; deq %i0; set %p = {g0};
         when %p == {mx} with %i0.0: eq %p1, %i0, {m}; set %p = {retry};
         when %p == {ry} with %i0.0: mov %o0.0, 0; deq %i0; set %p = {g1};
         when %p == {rn} with %i0.0: mov %o0.0, 0; deq %i0; set %p = {g0};
         when %p == {idle} with %i0.1: halt;",
        c0 = cmp(0),
        c1 = cmp(1),
        c2 = cmp(2),
        c3 = cmp(3),
        c4 = cmp(4),
        m = chars[0],
        i = chars[1],
        c = chars[2],
        r = chars[3],
        o = chars[4],
        to_act = to_act,
        a0 = act(0, true),
        a1 = act(1, true),
        a2 = act(2, true),
        a3 = act(3, true),
        a4 = act(4, true),
        g0 = to_compare_state(0),
        g1 = to_compare_state(1),
        g2 = to_compare_state(2),
        g3 = to_compare_state(3),
        g4 = to_compare_state(4),
        // state-0 mismatch (higher priority than the generic retry)
        m0 = act(0, false),
        // generic mismatch in any state: retry the byte as an 'M'
        mx = pattern(n, &[(0, true), (6, false), (1, false)]),
        retry = update(n, &[(6, true)]),
        ry = pattern(n, &[(0, true), (6, true), (1, true)]),
        rn = pattern(n, &[(0, true), (6, true), (1, false)]),
        idle = pattern(n, &[(0, false), (6, false)]),
    )
}

/// Builds the `string_search` workload over the given PE factory.
///
/// # Errors
///
/// Propagates assembly, validation and wiring errors.
pub fn build<P, F>(
    params: &Params,
    cfg: &StringSearchConfig,
    factory: &mut F,
) -> Result<Built<P>, WorkloadError>
where
    P: ProcessingElement,
    F: PeFactory<P>,
{
    assert_eq!(cfg.text_bytes % 4, 0, "text must be word-aligned");
    let mut rng = golden::rng(cfg.seed);
    let text = golden::search_text(cfg.text_bytes, NEEDLE, cfg.plants, &mut rng);
    let text_words = golden::pack_words(&text);
    let n_words = text_words.len();
    let out_base = n_words as u32;

    let mut words = text_words;
    words.resize(n_words + cfg.text_bytes, 0);
    let memory = Memory::from_words(words);

    let reader = streamer_program(params, 0, n_words as u32)?;
    let splitter = assemble(&splitter_source(params), params)?;
    let matcher = assemble(&matcher_source(params), params)?;

    let mut system = System::new(memory);
    let rd = system.add_pe(factory.make(params, reader)?);
    let sp = system.add_pe(factory.make(params, splitter)?);
    let w = system.add_pe(factory.make(params, matcher)?);
    let rp = system.add_read_port(ReadPort::new(params.queue_capacity, DEFAULT_LOAD_LATENCY));
    let wp = system.add_seq_write_port(SequentialWritePort::new(params.queue_capacity, out_base));

    system.connect(
        OutputRef::Pe { pe: rd, queue: 0 },
        InputRef::ReadAddr { port: rp },
    )?;
    system.connect(
        OutputRef::ReadData { port: rp },
        InputRef::Pe { pe: sp, queue: 0 },
    )?;
    system.connect(
        OutputRef::Pe { pe: sp, queue: 0 },
        InputRef::Pe { pe: w, queue: 0 },
    )?;
    system.connect(
        OutputRef::Pe { pe: w, queue: 0 },
        InputRef::SeqWriteData { port: wp },
    )?;

    let hits = golden::string_search_golden(&text, NEEDLE);
    let expected = hits
        .iter()
        .enumerate()
        .map(|(i, &h)| (out_base + i as u32, h))
        .collect();

    Ok(Built {
        system,
        worker: w,
        expected,
        max_cycles: cfg.text_bytes as u64 * 48 + 2_000,
        name: "string_search",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tia_sim::FuncPe;

    #[test]
    fn string_search_matches_golden_on_the_functional_model() {
        let params = Params::default();
        let mut factory = |p: &Params, prog| FuncPe::new(p, prog);
        let mut built = build(&params, &StringSearchConfig::test(), &mut factory).unwrap();
        built.run_to_completion().unwrap();
        // At least the planted needles must be found.
        let ones: u32 = built
            .expected
            .iter()
            .map(|&(a, _)| built.system.memory().read(a))
            .sum();
        assert!(ones >= 1, "no matches found");
    }

    #[test]
    fn programs_fit_the_instruction_memory() {
        let params = Params::default();
        assert_eq!(
            assemble(&splitter_source(&params), &params).unwrap().len(),
            9
        );
        assert_eq!(
            assemble(&matcher_source(&params), &params).unwrap().len(),
            15
        );
    }
}
