//! `stream` — maximum-throughput sequential store loop (Table 3).
//!
//! "One PE (the worker) generates a stream of data to store
//! (increasing integers from zero to a maximum value) while a second
//! produces an identical stream which is used as store indices. The
//! goal of the benchmark is to determine the maximum throughput for a
//! sequential loop within a PE program."
//!
//! Both PEs run the same tight three-instructions-per-element loop;
//! the loop-bound predicate is perfectly predictable after warmup.

use tia_asm::assemble;
use tia_fabric::{InputRef, Memory, OutputRef, ProcessingElement, System, WritePort};
use tia_isa::Params;

use crate::build::{Built, PeFactory, WorkloadError};
use crate::phases::{goto, when};

/// Configuration for the `stream` workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamConfig {
    /// Number of sequential stores.
    pub len: usize,
}

impl StreamConfig {
    /// Paper-scale run.
    pub fn paper() -> Self {
        StreamConfig { len: 65_536 }
    }

    /// Small configuration for fast tests.
    pub fn test() -> Self {
        StreamConfig { len: 128 }
    }
}

/// The generator loop: emit `base + 0..len` on `%o0`, three
/// instructions per element. `p0` = loop comparison, phase on `p2..p3`.
fn generator_source(params: &Params, base: u32, len: usize) -> String {
    let n = params.num_preds;
    const PH: [usize; 2] = [2, 3];
    let w = |v: u32, extra: &[(usize, bool)]| when(n, &PH, v, extra);
    let g = |v: u32| goto(n, &PH, v, &[]);
    let last = (len - 1) as u32;
    format!(
        "# sequential generator: {len} values from {base}
         when %p == {p0}: add %o0.0, %r0, {base}; set %p = {g1};
         when %p == {p1}: ult %p0, %r0, {last}; set %p = {g2};
         when %p == {next}: add %r0, %r0, 1; set %p = {g0};
         when %p == {done}: halt;",
        p0 = w(0, &[]),
        g1 = g(1),
        p1 = w(1, &[]),
        g2 = g(2),
        next = w(2, &[(0, true)]),
        g0 = g(0),
        done = w(2, &[(0, false)]),
    )
}

/// Builds the `stream` workload over the given PE factory. The worker
/// (PE 0) generates store data; PE 1 generates store indices.
///
/// # Errors
///
/// Propagates assembly, validation and wiring errors.
pub fn build<P, F>(
    params: &Params,
    cfg: &StreamConfig,
    factory: &mut F,
) -> Result<Built<P>, WorkloadError>
where
    P: ProcessingElement,
    F: PeFactory<P>,
{
    assert!(cfg.len > 0);
    let memory = Memory::new(cfg.len);
    let data_gen = assemble(&generator_source(params, 0, cfg.len), params)?;
    let index_gen = assemble(&generator_source(params, 0, cfg.len), params)?;

    let mut system = System::new(memory);
    let w = system.add_pe(factory.make(params, data_gen)?);
    let ix = system.add_pe(factory.make(params, index_gen)?);
    let wp = system.add_write_port(WritePort::new(params.queue_capacity));

    system.connect(
        OutputRef::Pe { pe: w, queue: 0 },
        InputRef::WriteData { port: wp },
    )?;
    system.connect(
        OutputRef::Pe { pe: ix, queue: 0 },
        InputRef::WriteAddr { port: wp },
    )?;

    let expected = (0..cfg.len as u32).map(|i| (i, i)).collect();
    Ok(Built {
        system,
        worker: w,
        expected,
        max_cycles: cfg.len as u64 * 16 + 2_000,
        name: "stream",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tia_sim::FuncPe;

    #[test]
    fn stream_matches_golden_on_the_functional_model() {
        let params = Params::default();
        let mut factory = |p: &Params, prog| FuncPe::new(p, prog);
        let mut built = build(&params, &StreamConfig::test(), &mut factory).unwrap();
        built.run_to_completion().unwrap();
        let counters = built.system.pe(built.worker).counters();
        // Three instructions per element: emit/test/increment, with
        // the final element's increment replaced by the halt.
        assert_eq!(counters.retired, 3 * 128);
    }

    #[test]
    fn generator_fits_the_instruction_memory() {
        let params = Params::default();
        let program = assemble(&generator_source(&params, 0, 16), &params).unwrap();
        assert_eq!(program.len(), 4);
    }
}
