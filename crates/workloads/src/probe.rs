//! A non-executing [`ProcessingElement`] that lets tools inspect a
//! built workload without simulating it.
//!
//! Workload builders are generic over a [`crate::PeFactory`], so a
//! static analyzer can instantiate every PE as a [`ProbePe`] — which
//! just records its program — and then walk
//! [`tia_fabric::System::links`] plus the captured programs. The
//! `lint_gate` integration test uses this to run `tia-lint` over every
//! shipped workload exactly as wired.

use tia_fabric::{ProcessingElement, TaggedQueue};
use tia_isa::{IsaError, Params, Program};

/// A PE that holds a program (and real, but never-stepped, queues so
/// builders may preload tokens) without executing anything.
#[derive(Debug)]
pub struct ProbePe {
    program: Program,
    inputs: Vec<TaggedQueue>,
    outputs: Vec<TaggedQueue>,
}

impl ProbePe {
    /// Captures `program`. Validates it like a real PE would, so a
    /// probe build exercises the same error paths.
    ///
    /// # Errors
    ///
    /// Returns the program's validation error, if any.
    pub fn new(params: &Params, program: Program) -> Result<Self, IsaError> {
        program.validate(params)?;
        Ok(ProbePe {
            program,
            inputs: (0..params.num_input_queues)
                .map(|_| TaggedQueue::new(params.queue_capacity))
                .collect(),
            outputs: (0..params.num_output_queues)
                .map(|_| TaggedQueue::new(params.queue_capacity))
                .collect(),
        })
    }

    /// The captured program.
    pub fn program(&self) -> &Program {
        &self.program
    }
}

impl ProcessingElement for ProbePe {
    fn step(&mut self) {}

    fn input_queue_mut(&mut self, index: usize) -> &mut TaggedQueue {
        &mut self.inputs[index]
    }

    fn output_queue_mut(&mut self, index: usize) -> &mut TaggedQueue {
        &mut self.outputs[index]
    }

    fn is_halted(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Scale, WorkloadKind};

    #[test]
    fn probe_build_captures_every_program() {
        let params = Params::default();
        let mut factory = |p: &Params, prog| ProbePe::new(p, prog);
        let built = WorkloadKind::Merge
            .build(&params, Scale::Test, &mut factory)
            .expect("merge builds over probes");
        assert_eq!(built.system.num_pes(), WorkloadKind::Merge.num_pes());
        for pe in 0..built.system.num_pes() {
            assert!(!built.system.pe(pe).program().instructions().is_empty());
        }
        assert!(!built.system.links().is_empty());
    }
}
