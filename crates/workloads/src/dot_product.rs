//! `dot_product` — two-stream multiply-accumulate (Table 3).
//!
//! "Two PEs stream two integer arrays to a third PE (the worker) which
//! calculates the dot product. Upon receiving end-of-program tags from
//! both stream PEs, the multiply-accumulate PE saves its accumulator
//! to memory before halting."
//!
//! Note (Fig. 4): "the worker PE in dot product does not rely on
//! predicates for control flow, just the semantic information encoded
//! in operand tags" — the MAC worker below has *no* datapath predicate
//! writes; its control is tags plus trigger-encoded updates. At the
//! default length of 10,000 elements the worker retires 20,003
//! dynamic instructions, the paper's exact figure (§3).

use tia_asm::assemble;
use tia_fabric::{
    InputRef, Memory, OutputRef, ProcessingElement, ReadPort, System, WritePort,
    DEFAULT_LOAD_LATENCY,
};
use tia_isa::Params;

use crate::build::{Built, PeFactory, WorkloadError};
use crate::golden;
use crate::phases::{goto, when};
use crate::streamer::streamer_program;

/// Configuration for the `dot_product` workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DotProductConfig {
    /// Vector length.
    pub len: usize,
    /// PRNG seed for vector contents.
    pub seed: u64,
}

impl DotProductConfig {
    /// Paper-scale run: worker retires exactly 20,003 instructions.
    pub fn paper() -> Self {
        DotProductConfig {
            len: 10_000,
            seed: 0xd07,
        }
    }

    /// Small configuration for fast tests.
    pub fn test() -> Self {
        DotProductConfig {
            len: 80,
            seed: 0xd07,
        }
    }
}

/// Worker program: tag-driven MAC with no datapath predicate writes.
/// Phase on `p2..p3`.
fn worker_source(params: &Params, result_addr: u32) -> String {
    let n = params.num_preds;
    const PH: [usize; 2] = [2, 3];
    let w = |v: u32| when(n, &PH, v, &[]);
    let g = |v: u32| goto(n, &PH, v, &[]);
    format!(
        "# dot product worker: result stored at {result_addr}
         when %p == {p0} with %i0.1, %i1.1: mov %o0.0, {result_addr}; set %p = {g2};
         when %p == {p0} with %i0.0, %i1.0: mul %r0, %i0, %i1; deq %i0, %i1; set %p = {g1};
         when %p == {p1}: add %r1, %r1, %r0; set %p = {g0};
         when %p == {p2}: mov %o1.0, %r1; set %p = {g3};
         when %p == {p3}: halt;",
        p0 = w(0),
        g2 = g(2),
        g1 = g(1),
        p1 = w(1),
        g0 = g(0),
        p2 = w(2),
        g3 = g(3),
        p3 = w(3),
    )
}

/// Builds the `dot_product` workload over the given PE factory.
///
/// # Errors
///
/// Propagates assembly, validation and wiring errors.
pub fn build<P, F>(
    params: &Params,
    cfg: &DotProductConfig,
    factory: &mut F,
) -> Result<Built<P>, WorkloadError>
where
    P: ProcessingElement,
    F: PeFactory<P>,
{
    let mut rng = golden::rng(cfg.seed);
    let a = golden::random_array(cfg.len, 1 << 16, &mut rng);
    let b = golden::random_array(cfg.len, 1 << 16, &mut rng);
    let result_addr = (2 * cfg.len) as u32;

    let mut words = a.clone();
    words.extend_from_slice(&b);
    words.push(0);
    let memory = Memory::from_words(words);

    let stream_a = streamer_program(params, 0, cfg.len as u32)?;
    let stream_b = streamer_program(params, cfg.len as u32, cfg.len as u32)?;
    let worker = assemble(&worker_source(params, result_addr), params)?;

    let mut system = System::new(memory);
    let sa = system.add_pe(factory.make(params, stream_a)?);
    let sb = system.add_pe(factory.make(params, stream_b)?);
    let w = system.add_pe(factory.make(params, worker)?);
    let rpa = system.add_read_port(ReadPort::new(params.queue_capacity, DEFAULT_LOAD_LATENCY));
    let rpb = system.add_read_port(ReadPort::new(params.queue_capacity, DEFAULT_LOAD_LATENCY));
    let wp = system.add_write_port(WritePort::new(params.queue_capacity));

    system.connect(
        OutputRef::Pe { pe: sa, queue: 0 },
        InputRef::ReadAddr { port: rpa },
    )?;
    system.connect(
        OutputRef::Pe { pe: sb, queue: 0 },
        InputRef::ReadAddr { port: rpb },
    )?;
    system.connect(
        OutputRef::ReadData { port: rpa },
        InputRef::Pe { pe: w, queue: 0 },
    )?;
    system.connect(
        OutputRef::ReadData { port: rpb },
        InputRef::Pe { pe: w, queue: 1 },
    )?;
    system.connect(
        OutputRef::Pe { pe: w, queue: 0 },
        InputRef::WriteAddr { port: wp },
    )?;
    system.connect(
        OutputRef::Pe { pe: w, queue: 1 },
        InputRef::WriteData { port: wp },
    )?;

    Ok(Built {
        system,
        worker: w,
        expected: vec![(result_addr, golden::dot_product_golden(&a, &b))],
        max_cycles: cfg.len as u64 * 24 + 2_000,
        name: "dot_product",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tia_sim::FuncPe;

    #[test]
    fn dot_product_matches_golden_on_the_functional_model() {
        let params = Params::default();
        let mut factory = |p: &Params, prog| FuncPe::new(p, prog);
        let mut built = build(&params, &DotProductConfig::test(), &mut factory).unwrap();
        built.run_to_completion().unwrap();
        let counters = built.system.pe(built.worker).counters();
        // 2 instructions per element + 3-instruction epilogue, and no
        // datapath predicate writes at all (Fig. 4).
        assert_eq!(counters.retired, 2 * 80 + 3);
        assert_eq!(counters.predicate_writes, 0);
    }

    #[test]
    fn worker_fits_the_instruction_memory() {
        let params = Params::default();
        let program = assemble(&worker_source(&params, 10), &params).unwrap();
        assert_eq!(program.len(), 5);
    }
}
