//! `gcd` — subtraction-based greatest common divisor (Table 3).
//!
//! "A single PE reads two numbers for which to calculate the GCD
//! (chosen intentionally for long runtime), and performs a
//! register-register operation workload to calculate the GCD before
//! storing it back to memory."
//!
//! The default operand pair is chosen so the worker retires ≈411,540
//! dynamic instructions, the suite's maximum (§3). The `a > b`
//! comparison is stable for almost the entire run, making `gcd` the
//! paper's best case for predicate prediction (Fig. 4).

use tia_asm::assemble;
use tia_fabric::{
    InputRef, Memory, OutputRef, ProcessingElement, ReadPort, System, WritePort,
    DEFAULT_LOAD_LATENCY,
};
use tia_isa::Params;

use crate::build::{Built, PeFactory, WorkloadError};
use crate::phases::{goto, when};

/// Configuration for the `gcd` workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GcdConfig {
    /// First operand (stored at address 0).
    pub a: u32,
    /// Second operand (stored at address 1).
    pub b: u32,
}

impl GcdConfig {
    /// Paper-scale run: `4 + 3·(a − 1) + 4 = 411,542` retired
    /// instructions, matching the paper's reported 411,540 to within
    /// rounding of the epilogue.
    pub fn paper() -> Self {
        GcdConfig { a: 137_179, b: 1 }
    }

    /// Small configuration for fast tests — still "chosen
    /// intentionally for long runtime" in miniature, so the loop
    /// comparison stays predictable as in the paper's Figure 4.
    pub fn test() -> Self {
        GcdConfig { a: 9001, b: 2 }
    }
}

/// Worker program. `p0` = loop-continue comparison (predictable),
/// `p1` = operand-order comparison, phase on `p2..p5`.
fn worker_source(params: &Params) -> String {
    let n = params.num_preds;
    const PH: [usize; 4] = [2, 3, 4, 5];
    let w = |v: u32, extra: &[(usize, bool)]| when(n, &PH, v, extra);
    let g = |v: u32| goto(n, &PH, v, &[]);
    format!(
        "# gcd worker: operands at 0 and 1, result at 2
         when %p == {p0}: mov %o0.0, 0; set %p = {g1};
         when %p == {p1} with %i0.0: mov %r0, %i0; deq %i0; set %p = {g2};
         when %p == {p2}: mov %o0.0, 1; set %p = {g3};
         when %p == {p3} with %i0.0: mov %r1, %i0; deq %i0; set %p = {g4};
         when %p == {p4}: ne %p0, %r0, %r1; set %p = {g5};
         when %p == {done}: mov %o1.0, 2; set %p = {g7};
         when %p == {more}: ugt %p1, %r0, %r1; set %p = {g6};
         when %p == {a_big}: sub %r0, %r0, %r1; set %p = {g4};
         when %p == {b_big}: sub %r1, %r1, %r0; set %p = {g4};
         when %p == {p7}: mov %o2.0, %r0; set %p = {g8};
         when %p == {p8}: halt;",
        p0 = w(0, &[]),
        g1 = g(1),
        p1 = w(1, &[]),
        g2 = g(2),
        p2 = w(2, &[]),
        g3 = g(3),
        p3 = w(3, &[]),
        g4 = g(4),
        p4 = w(4, &[]),
        g5 = g(5),
        done = w(5, &[(0, false)]),
        g7 = g(7),
        more = w(5, &[(0, true)]),
        g6 = g(6),
        a_big = w(6, &[(1, true)]),
        b_big = w(6, &[(1, false)]),
        p7 = w(7, &[]),
        g8 = g(8),
        p8 = w(8, &[]),
    )
}

/// Builds the `gcd` workload over the given PE factory.
///
/// # Errors
///
/// Propagates assembly, validation and wiring errors.
pub fn build<P, F>(
    params: &Params,
    cfg: &GcdConfig,
    factory: &mut F,
) -> Result<Built<P>, WorkloadError>
where
    P: ProcessingElement,
    F: PeFactory<P>,
{
    assert!(cfg.a > 0 && cfg.b > 0, "gcd operands must be positive");
    let memory = Memory::from_words(vec![cfg.a, cfg.b, 0]);
    let program = assemble(&worker_source(params), params)?;

    let mut system = System::new(memory);
    let pe = system.add_pe(factory.make(params, program)?);
    let rp = system.add_read_port(ReadPort::new(params.queue_capacity, DEFAULT_LOAD_LATENCY));
    let wp = system.add_write_port(WritePort::new(params.queue_capacity));

    system.connect(
        OutputRef::Pe { pe, queue: 0 },
        InputRef::ReadAddr { port: rp },
    )?;
    system.connect(
        OutputRef::ReadData { port: rp },
        InputRef::Pe { pe, queue: 0 },
    )?;
    system.connect(
        OutputRef::Pe { pe, queue: 1 },
        InputRef::WriteAddr { port: wp },
    )?;
    system.connect(
        OutputRef::Pe { pe, queue: 2 },
        InputRef::WriteData { port: wp },
    )?;

    let (g, iterations) = crate::golden::gcd_golden(cfg.a, cfg.b);
    Ok(Built {
        system,
        worker: pe,
        expected: vec![(2, g)],
        max_cycles: iterations * 20 + 2_000,
        name: "gcd",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tia_sim::FuncPe;

    #[test]
    fn gcd_matches_golden_on_the_functional_model() {
        let params = Params::default();
        let mut factory = |p: &Params, prog| FuncPe::new(p, prog);
        let mut built = build(&params, &GcdConfig::test(), &mut factory).unwrap();
        built.run_to_completion().unwrap();
        assert_eq!(built.system.memory().read(2), 1); // gcd(9001, 2)
    }

    #[test]
    fn paper_scale_dynamic_count_is_near_411540() {
        // 4 loads/receives + 3 instructions per subtract iteration +
        // the final ne + store epilogue.
        let cfg = GcdConfig::paper();
        let (_, iterations) = crate::golden::gcd_golden(cfg.a, cfg.b);
        let retired = 4 + 3 * iterations + 1 + 3;
        let target = 411_540f64;
        let ratio = retired as f64 / target;
        assert!((0.99..=1.01).contains(&ratio), "retired = {retired}");
    }

    #[test]
    fn worker_fits_the_instruction_memory() {
        let params = Params::default();
        let program = assemble(&worker_source(&params), &params).unwrap();
        assert_eq!(program.len(), 11);
    }
}
