//! Tier-1 gate: every shipped workload, built exactly as wired, must
//! pass `tia-lint` — no error- or warning-level findings in any PE
//! program or in the fabric graph, beyond the explicit allowlist
//! below.

use tia_isa::{Params, Program};
use tia_lint::{Check, Level};
use tia_workloads::{ProbePe, Scale, WorkloadKind, ALL_WORKLOADS};

/// Findings that are intentional and documented. Each entry is
/// `(workload, pe, check)`; keep this list short and justified.
const ALLOWLIST: &[(&str, usize, Check)] = &[];

fn allowed(workload: &str, pe: usize, check: Check) -> bool {
    ALLOWLIST
        .iter()
        .any(|&(w, p, c)| w == workload && p == pe && c == check)
}

#[test]
fn all_workloads_pass_the_lint_gate() {
    let params = Params::default();
    let mut failures = Vec::new();
    for kind in ALL_WORKLOADS {
        let mut factory = |p: &Params, prog| ProbePe::new(p, prog);
        let built = kind
            .build(&params, Scale::Test, &mut factory)
            .unwrap_or_else(|e| panic!("{kind}: probe build failed: {e}"));
        let programs: Vec<Program> = (0..built.system.num_pes())
            .map(|pe| built.system.pe(pe).program().clone())
            .collect();

        for (pe, program) in programs.iter().enumerate() {
            let report = tia_lint::lint_program(program, &params);
            assert!(report.analyzed, "{kind}: pe {pe} not analyzed");
            for d in &report.diagnostics {
                if d.level >= Level::Warning && !allowed(kind.name(), pe, d.check) {
                    failures.push(format!("{kind}: pe {pe}: {}", d.render(None)));
                }
            }
        }

        for d in tia_lint::lint_system(&programs, &params, built.system.links()) {
            if d.level >= Level::Warning
                && !allowed(kind.name(), d.pe.unwrap_or(usize::MAX), d.check)
            {
                failures.push(format!("{kind}: {}", d.render(None)));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "lint gate failed:\n{}",
        failures.join("\n")
    );
}

/// The paper's single-PE workloads drive Figure 5's speculation
/// results: the lint's speculability verdict must at least agree that
/// the predictor activates on each of them (they all branch on
/// datapath-computed predicates).
#[test]
fn single_pe_workloads_activate_the_predictor() {
    let params = Params::default();
    for kind in [WorkloadKind::Gcd, WorkloadKind::Mean, WorkloadKind::Bst] {
        let mut factory = |p: &Params, prog| ProbePe::new(p, prog);
        let built = kind
            .build(&params, Scale::Test, &mut factory)
            .unwrap_or_else(|e| panic!("{kind}: probe build failed: {e}"));
        let report = tia_lint::lint_program(built.system.pe(built.worker).program(), &params);
        assert!(
            report.speculation.activates_predictor,
            "{kind}: worker never writes a predicate via the datapath?"
        );
    }
}
