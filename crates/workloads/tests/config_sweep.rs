//! Robustness sweep: workload builders verify across input sizes,
//! seeds and fabric parameters, not just the two canned scales.

use tia_isa::Params;
use tia_sim::FuncPe;
use tia_workloads::{
    arg_max::ArgMaxConfig, bst::BstConfig, dot_product::DotProductConfig, filter::FilterConfig,
    gcd::GcdConfig, mean::MeanConfig, merge::MergeConfig, stream::StreamConfig,
    string_search::StringSearchConfig, udiv::UdivConfig,
};

fn run<B>(build: B)
where
    B: FnOnce(&Params) -> Result<tia_workloads::Built<FuncPe>, tia_workloads::WorkloadError>,
{
    let params = Params::default();
    let mut built = build(&params).expect("build");
    built.run_to_completion().expect("verify");
}

macro_rules! factory {
    () => {
        &mut |p: &Params, prog: tia_isa::Program| FuncPe::new(p, prog)
    };
}

#[test]
fn bst_verifies_across_tree_shapes_and_seeds() {
    for (nodes, keys, seed) in [(1, 8, 1u64), (2, 4, 2), (127, 64, 3), (200, 10, 4)] {
        run(|p| tia_workloads::bst::build(p, &BstConfig { nodes, keys, seed }, factory!()));
    }
}

#[test]
fn gcd_verifies_on_edge_operand_pairs() {
    for (a, b) in [(1, 1), (1, 7), (7, 1), (1000, 1000), (999, 1000), (17, 510)] {
        run(|p| tia_workloads::gcd::build(p, &GcdConfig { a, b }, factory!()));
    }
}

#[test]
fn mean_verifies_on_degenerate_lengths() {
    for (len, seed) in [(1usize, 9u64), (2, 10), (8, 11), (256, 12)] {
        run(|p| tia_workloads::mean::build(p, &MeanConfig { len, seed }, factory!()));
    }
}

#[test]
fn arg_max_verifies_when_the_max_is_first_or_last() {
    for (len, seed) in [(1usize, 1u64), (2, 2), (33, 3), (128, 4)] {
        run(|p| tia_workloads::arg_max::build(p, &ArgMaxConfig { len, seed }, factory!()));
    }
}

#[test]
fn dot_product_verifies_on_short_vectors() {
    for (len, seed) in [(1usize, 5u64), (3, 6), (17, 7)] {
        run(|p| tia_workloads::dot_product::build(p, &DotProductConfig { len, seed }, factory!()));
    }
}

#[test]
fn filter_verifies_at_extreme_thresholds() {
    for (threshold, bound) in [(0u32, 1u32 << 16), (u32::MAX, 1 << 16), (1 << 15, 1 << 16)] {
        run(|p| {
            tia_workloads::filter::build(
                p,
                &FilterConfig {
                    len: 40,
                    threshold,
                    bound,
                    seed: 8,
                },
                factory!(),
            )
        });
    }
}

#[test]
fn merge_verifies_with_empty_sides_avoided_and_skew() {
    // One-element sides, heavy skew, equal lengths.
    for (a, b) in [(1usize, 1usize), (1, 50), (50, 1), (20, 20)] {
        run(|p| {
            tia_workloads::merge::build(
                p,
                &MergeConfig {
                    len_a: a,
                    len_b: b,
                    seed: 13,
                },
                factory!(),
            )
        });
    }
}

#[test]
fn stream_verifies_at_small_lengths() {
    for len in [1usize, 2, 3, 100] {
        run(|p| tia_workloads::stream::build(p, &StreamConfig { len }, factory!()));
    }
}

#[test]
fn string_search_verifies_with_and_without_plants() {
    for (bytes, plants, seed) in [(8usize, 0usize, 20u64), (64, 1, 21), (120, 12, 22)] {
        run(|p| {
            tia_workloads::string_search::build(
                p,
                &StringSearchConfig {
                    text_bytes: bytes,
                    plants,
                    seed,
                },
                factory!(),
            )
        });
    }
}

#[test]
fn udiv_verifies_including_divisor_one() {
    for (pairs, seed) in [(1usize, 30u64), (3, 31), (9, 32)] {
        run(|p| tia_workloads::udiv::build(p, &UdivConfig { pairs, seed }, factory!()));
    }
}

#[test]
fn workloads_verify_under_alternate_queue_capacities() {
    for capacity in [2usize, 3, 8] {
        let mut params = Params::default();
        params.queue_capacity = capacity;
        let mut factory = |p: &Params, prog: tia_isa::Program| FuncPe::new(p, prog);
        for kind in tia_workloads::ALL_WORKLOADS {
            let mut built = kind
                .build(&params, tia_workloads::Scale::Test, &mut factory)
                .unwrap_or_else(|e| panic!("{kind} at capacity {capacity}: {e}"));
            built
                .run_to_completion()
                .unwrap_or_else(|e| panic!("{kind} at capacity {capacity}: {e}"));
        }
    }
}

#[test]
fn verification_catches_a_corrupted_result() {
    // Run a workload, then corrupt one golden location: verify() must
    // report exactly that address.
    let params = Params::default();
    let mut factory = |p: &Params, prog: tia_isa::Program| FuncPe::new(p, prog);
    let mut built = tia_workloads::WorkloadKind::Gcd
        .build(&params, tia_workloads::Scale::Test, &mut factory)
        .expect("build");
    built.run_to_completion().expect("clean run verifies");
    let (addr, good) = built.expected[0];
    built.system.memory_mut().write(addr, good.wrapping_add(1));
    match built.verify() {
        Err(tia_workloads::WorkloadError::Mismatch {
            addr: bad_addr,
            expected,
            found,
            ..
        }) => {
            assert_eq!(bad_addr, addr);
            assert_eq!(expected, good);
            assert_eq!(found, good.wrapping_add(1));
        }
        other => panic!("expected a mismatch, got {other:?}"),
    }
}
