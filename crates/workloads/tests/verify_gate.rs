//! Tier-1 gate: every shipped workload, built exactly as wired, must
//! be **verified deadlock-free** by `tia-verify`'s exhaustive
//! fabric-level model check — or carry an explicit, justified
//! allowlist entry below. This is the static counterpart of the
//! golden-output run: the dynamic tests show each workload *does*
//! complete on its seeded input; this gate shows the fabric *cannot*
//! wedge under any environment timing or data the abstraction admits.

use tia_fabric::ProcessingElement;
use tia_isa::{Params, Program};
use tia_lint::Check;
use tia_verify::{verify_system, SeedToken, VerifyOptions};
use tia_workloads::{ProbePe, Scale, ALL_WORKLOADS};

/// Findings that are intentional and documented. Each entry is
/// `(workload, check)`; keep this list short and justified.
///
/// The `fabric-deadlock` entries below are all the same known
/// precision limit (see docs/static-analysis.md "Soundness"): these
/// workloads bound their loops with register data the control-plane
/// abstraction cannot see, so each data-dependent predicate write
/// forks both ways independently. The forks decouple producer and
/// consumer iteration counts — the model admits runs where one PE
/// decides "done" after k items while its peer produces k+1 — and the
/// surplus token wedges. No concrete run with the shipped data
/// exhibits these traces (their replays report the documented
/// fork-divergence), but the abstraction is sound to include them.
const ALLOWLIST: &[(&str, Check)] = &[
    ("stream", Check::FabricDeadlock),
    ("udiv", Check::FabricDeadlock),
    ("filter", Check::FabricDeadlock),
    ("dot_product", Check::FabricDeadlock),
];

/// Workloads the checker may return `inconclusive` on (state bound
/// reached before exhaustion). Same root cause as the allowlist: the
/// uncorrelated fork interleavings inflate the reachable product
/// space past the gate's bound.
const INCONCLUSIVE_ALLOWLIST: &[&str] = &["string_search", "merge", "filter", "dot_product"];

fn allowed(workload: &str, check: Check) -> bool {
    ALLOWLIST.iter().any(|&(w, c)| w == workload && c == check)
}

#[test]
fn all_workloads_verify_deadlock_free() {
    let params = Params::default();
    let mut failures = Vec::new();
    for kind in ALL_WORKLOADS {
        let mut factory = |p: &Params, prog| ProbePe::new(p, prog);
        let mut built = kind
            .build(&params, Scale::Test, &mut factory)
            .unwrap_or_else(|e| panic!("{kind}: probe build failed: {e}"));
        let programs: Vec<Program> = (0..built.system.num_pes())
            .map(|pe| built.system.pe(pe).program().clone())
            .collect();
        // Workload builders may pre-seed PE input queues; fold those
        // tokens into the abstract initial state so the model checks
        // the fabric exactly as built.
        let mut options = VerifyOptions::default();
        // Every provable workload proves well inside this bound; the
        // allowlisted fork-heavy ones would not converge even at the
        // default, so the tighter bound just keeps the gate fast.
        options.max_states = 1 << 16;
        for pe in 0..programs.len() {
            for queue in 0..params.num_input_queues {
                let tags: Vec<_> = built
                    .system
                    .pe_mut(pe)
                    .input_queue_mut(queue)
                    .iter()
                    .map(|t| t.tag)
                    .collect();
                for tag in tags {
                    options.seed_tokens.push(SeedToken { pe, queue, tag });
                }
            }
            for queue in 0..params.num_output_queues {
                assert!(
                    built.system.pe_mut(pe).output_queue_mut(queue).is_empty(),
                    "{kind}: pe {pe} %o{queue} is pre-seeded; the gate cannot model that"
                );
            }
        }

        let links = built.system.links().to_vec();
        let report = verify_system(&programs, &params, &links, &options);

        if !report.exhaustive && !INCONCLUSIVE_ALLOWLIST.contains(&kind.name()) {
            failures.push(format!("{kind}: {}", report.verdict()));
            continue;
        }
        for finding in &report.findings {
            if !allowed(kind.name(), finding.check) {
                failures.push(format!(
                    "{kind}: {}[{}]: {}",
                    finding.level, finding.check, finding.message
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "verify gate failed:\n{}",
        failures.join("\n")
    );
}
