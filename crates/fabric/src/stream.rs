//! Host stream endpoints: sources that inject token streams into the
//! array and sinks that collect results.
//!
//! These stand in for the paper's userspace library, which "is
//! responsible for performing all data I/O and setting up data buffers
//! for program execution" (§2.3). A [`StreamSource`] plays the role of
//! a preloaded input buffer; a [`StreamSink`] the role of an output
//! buffer read back by the host.

use serde::{Deserialize, Serialize};

use crate::queue::{QueueState, RestoreError, TaggedQueue, Token};

/// Injects a fixed token sequence into the fabric, one token per cycle
/// as space allows.
#[derive(Debug, Clone)]
pub struct StreamSource {
    /// Outgoing tokens (a channel endpoint).
    pub out: TaggedQueue,
    pending: Vec<Token>,
    next: usize,
}

impl StreamSource {
    /// Creates a source that will emit `tokens` in order.
    pub fn new(queue_capacity: usize, tokens: Vec<Token>) -> Self {
        StreamSource {
            out: TaggedQueue::new(queue_capacity),
            pending: tokens,
            next: 0,
        }
    }

    /// Advances one cycle, staging at most one token.
    pub fn step(&mut self) {
        if self.next < self.pending.len() && !self.out.is_full() {
            let accepted = self.out.push(self.pending[self.next]);
            debug_assert!(accepted);
            self.next += 1;
        }
    }

    /// Whether every token has been handed to the fabric.
    pub fn is_drained(&self) -> bool {
        self.next == self.pending.len() && self.out.is_empty()
    }

    /// Tokens not yet staged into the output queue.
    pub fn remaining(&self) -> usize {
        self.pending.len() - self.next
    }

    /// Captures the source's progress through its token sequence.
    ///
    /// The pending tokens themselves are workload input data — the
    /// host reconstructs them on resume — so the snapshot records only
    /// the cursor and the sequence length (as a consistency check).
    pub fn snapshot(&self) -> StreamSourceState {
        StreamSourceState {
            out: self.out.snapshot(),
            pending_len: self.pending.len(),
            next: self.next,
        }
    }

    /// Restores a snapshot taken from a source fed the same token
    /// sequence.
    ///
    /// # Errors
    ///
    /// Fails when the queue capacity or sequence length differ, or the
    /// cursor lies beyond the sequence.
    pub fn restore(&mut self, state: &StreamSourceState) -> Result<(), RestoreError> {
        if state.pending_len != self.pending.len() {
            return Err(RestoreError::shape(
                "stream-source length",
                self.pending.len(),
                state.pending_len,
            ));
        }
        if state.next > state.pending_len {
            return Err(RestoreError::invalid("stream cursor beyond sequence end"));
        }
        self.out.restore(&state.out)?;
        self.next = state.next;
        Ok(())
    }
}

/// Serializable snapshot of a [`StreamSource`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamSourceState {
    /// Output queue state.
    pub out: QueueState,
    /// Length of the pending token sequence (consistency check).
    pub pending_len: usize,
    /// Index of the next token to stage.
    pub next: usize,
}

/// Collects every token arriving on its input endpoint.
#[derive(Debug, Clone)]
pub struct StreamSink {
    /// Incoming tokens (a channel endpoint). Drained into
    /// [`StreamSink::collected`] every cycle, so it never exerts
    /// backpressure.
    pub input: TaggedQueue,
    collected: Vec<Token>,
}

impl StreamSink {
    /// Creates a sink with the given endpoint capacity.
    pub fn new(queue_capacity: usize) -> Self {
        StreamSink {
            input: TaggedQueue::new(queue_capacity),
            collected: Vec::new(),
        }
    }

    /// Advances one cycle, draining the endpoint completely.
    pub fn step(&mut self) {
        while let Some(t) = self.input.pop() {
            self.collected.push(t);
        }
    }

    /// Every token received so far, in arrival order.
    pub fn collected(&self) -> &[Token] {
        &self.collected
    }

    /// The received data words, discarding tags.
    pub fn words(&self) -> Vec<u32> {
        self.collected.iter().map(|t| t.data).collect()
    }

    /// Captures the complete sink state, including every token
    /// collected so far.
    pub fn snapshot(&self) -> StreamSinkState {
        StreamSinkState {
            input: self.input.snapshot(),
            collected: self.collected.clone(),
        }
    }

    /// Restores a snapshot taken from a sink of the same shape.
    ///
    /// # Errors
    ///
    /// Fails when the queue capacity differs.
    pub fn restore(&mut self, state: &StreamSinkState) -> Result<(), RestoreError> {
        self.input.restore(&state.input)?;
        self.collected = state.collected.clone();
        Ok(())
    }
}

/// Serializable snapshot of a [`StreamSink`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamSinkState {
    /// Input queue state.
    pub input: QueueState,
    /// Tokens collected so far, in arrival order.
    pub collected: Vec<Token>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_emits_in_order_with_backpressure() {
        let tokens: Vec<Token> = (0..5).map(Token::data).collect();
        let mut src = StreamSource::new(2, tokens);
        src.step();
        src.step();
        assert!(src.out.is_full());
        src.step(); // no space: nothing staged, nothing lost
        assert_eq!(src.remaining(), 3);
        assert_eq!(src.out.pop().unwrap().data, 0);
        src.step();
        assert_eq!(src.out.pop().unwrap().data, 1);
        assert_eq!(src.out.pop().unwrap().data, 2);
    }

    #[test]
    fn source_drains_exactly_once() {
        let mut src = StreamSource::new(4, vec![Token::data(1)]);
        assert!(!src.is_drained());
        src.step();
        assert!(!src.is_drained()); // still buffered in `out`
        let _ = src.out.pop();
        assert!(src.is_drained());
        src.step();
        assert!(src.out.is_empty(), "drained source emits nothing more");
    }

    #[test]
    fn sink_collects_everything() {
        let mut sink = StreamSink::new(2);
        assert!(sink.input.push(Token::data(7)));
        assert!(sink.input.push(Token::data(8)));
        sink.step();
        assert!(sink.input.push(Token::data(9)));
        sink.step();
        assert_eq!(sink.words(), vec![7, 8, 9]);
    }
}
