//! The on-chip data memory and its channel-endpoint access ports.
//!
//! "Operations involving main memory are currently carried out
//! explicitly via the queues using read and write ports as endpoints
//! for designated channels" (§2.2, citing the distributed memory
//! operations of prior work). The paper's test system supplies all data
//! "from on-chip memory, which on this system has a load latency of
//! four cycles" (§3); [`DEFAULT_LOAD_LATENCY`] reproduces that.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};
use tia_isa::{Tag, Word};

use crate::queue::{QueueState, RestoreError, TaggedQueue, Token};

/// The paper's on-chip memory load latency in cycles (§3).
pub const DEFAULT_LOAD_LATENCY: u32 = 4;

/// A word-addressed shared data memory.
///
/// Addresses are word indices, as the workloads in this repository use
/// word-granular layouts throughout.
///
/// # Examples
///
/// ```
/// use tia_fabric::Memory;
///
/// let mut mem = Memory::new(16);
/// mem.write(3, 0xabcd);
/// assert_eq!(mem.read(3), 0xabcd);
/// assert_eq!(mem.read(99), 0); // out-of-bounds reads return zero
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Memory {
    words: Vec<Word>,
}

impl Memory {
    /// Creates a zero-filled memory of `words` 32-bit words.
    pub fn new(words: usize) -> Self {
        Memory {
            words: vec![0; words],
        }
    }

    /// Creates a memory initialized from `contents` (and sized to it).
    pub fn from_words(contents: Vec<Word>) -> Self {
        Memory { words: contents }
    }

    /// The memory size in words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the memory has zero words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Reads the word at `addr`; out-of-bounds reads return 0, the
    /// conventional bus behaviour of the prototype.
    pub fn read(&self, addr: Word) -> Word {
        self.words.get(addr as usize).copied().unwrap_or(0)
    }

    /// Writes the word at `addr`; out-of-bounds writes are dropped.
    pub fn write(&mut self, addr: Word, value: Word) {
        if let Some(w) = self.words.get_mut(addr as usize) {
            *w = value;
        }
    }

    /// A view of the backing words.
    pub fn words(&self) -> &[Word] {
        &self.words
    }
}

/// A memory read port: accepts address tokens on its request queue and
/// emits the loaded words on its response queue after a fixed latency.
///
/// The response token carries the tag of the request token, so a PE can
/// thread semantic information (e.g. end-of-stream markers) through
/// memory without extra instructions.
#[derive(Debug, Clone)]
pub struct ReadPort {
    /// Incoming address tokens (a channel endpoint).
    pub addr_in: TaggedQueue,
    /// Outgoing data tokens (a channel endpoint).
    pub data_out: TaggedQueue,
    latency: u32,
    in_flight: VecDeque<(u64, Token)>,
    now: u64,
}

impl ReadPort {
    /// Creates a read port with the given queue capacity and load
    /// latency.
    pub fn new(queue_capacity: usize, latency: u32) -> Self {
        ReadPort {
            addr_in: TaggedQueue::new(queue_capacity),
            data_out: TaggedQueue::new(queue_capacity),
            latency,
            in_flight: VecDeque::new(),
            now: 0,
        }
    }

    /// The configured load latency in cycles.
    pub fn latency(&self) -> u32 {
        self.latency
    }

    /// Advances the port one cycle: retires completed loads into
    /// `data_out` and launches one new request from `addr_in`.
    pub fn step(&mut self, memory: &Memory) {
        self.now += 1;
        // Retire completed loads, oldest first, while there is space.
        while let Some((ready, token)) = self.in_flight.front().copied() {
            if ready > self.now || self.data_out.is_full() {
                break;
            }
            let accepted = self.data_out.push(token);
            debug_assert!(accepted);
            self.in_flight.pop_front();
        }
        // Launch one new request per cycle, bounding the number in
        // flight so total port buffering stays at the response queue
        // capacity.
        if self.in_flight.len() < self.data_out.capacity() {
            if let Some(req) = self.addr_in.pop() {
                let loaded = Token::new(req.tag, memory.read(req.data));
                self.in_flight
                    .push_back((self.now + self.latency as u64, loaded));
            }
        }
    }

    /// Whether the port has no buffered or in-flight work.
    pub fn is_idle(&self) -> bool {
        self.addr_in.is_empty() && self.data_out.is_empty() && self.in_flight.is_empty()
    }

    /// The earliest cycle at which this port's visible state can
    /// change, given the system cycle counter `now` (which the port's
    /// local clock tracks). `None` means only external input — a new
    /// address token, or space appearing in `data_out` — can make the
    /// port do work.
    pub fn next_event_cycle(&self, now: u64) -> Option<u64> {
        debug_assert_eq!(self.now, now, "port clock tracks the system cycle");
        // A buffered request can launch on the next step.
        if !self.addr_in.is_empty() && self.in_flight.len() < self.data_out.capacity() {
            return Some(now);
        }
        // The oldest in-flight load retires in the step where the local
        // clock reaches `ready`, i.e. system cycle `ready - 1`.
        match self.in_flight.front() {
            Some(&(ready, _)) if !self.data_out.is_full() => Some(now.max(ready.saturating_sub(1))),
            _ => None,
        }
    }

    /// Bulk-advances the local clock across `cycles` inert cycles,
    /// exactly as if [`ReadPort::step`] had run that many times with
    /// nothing to retire or launch.
    pub fn skip_cycles(&mut self, cycles: u64) {
        debug_assert!(
            match self.next_event_cycle(self.now) {
                None => true,
                Some(c) => c >= self.now + cycles,
            },
            "skipped cycles must lie strictly before the port's next event"
        );
        self.now += cycles;
    }

    /// Number of loads currently in the latency pipe.
    pub fn in_flight_len(&self) -> usize {
        self.in_flight.len()
    }

    /// Captures the complete port state: queues, in-flight loads and
    /// the local cycle counter.
    pub fn snapshot(&self) -> ReadPortState {
        ReadPortState {
            addr_in: self.addr_in.snapshot(),
            data_out: self.data_out.snapshot(),
            latency: self.latency,
            in_flight: self
                .in_flight
                .iter()
                .map(|&(ready, token)| InFlightLoad { ready, token })
                .collect(),
            now: self.now,
        }
    }

    /// Restores a snapshot taken from a port of the same shape.
    ///
    /// # Errors
    ///
    /// Fails when queue capacities or the configured latency differ.
    pub fn restore(&mut self, state: &ReadPortState) -> Result<(), RestoreError> {
        if state.latency != self.latency {
            return Err(RestoreError::shape(
                "read-port latency",
                self.latency as usize,
                state.latency as usize,
            ));
        }
        self.addr_in.restore(&state.addr_in)?;
        self.data_out.restore(&state.data_out)?;
        self.in_flight = state.in_flight.iter().map(|l| (l.ready, l.token)).collect();
        self.now = state.now;
        Ok(())
    }
}

/// One load travelling through a [`ReadPort`]'s latency pipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InFlightLoad {
    /// Cycle at which the load may retire into `data_out`.
    pub ready: u64,
    /// The loaded token (tag threaded from the request).
    pub token: Token,
}

/// Serializable snapshot of a [`ReadPort`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReadPortState {
    /// Request queue state.
    pub addr_in: QueueState,
    /// Response queue state.
    pub data_out: QueueState,
    /// Configured load latency.
    pub latency: u32,
    /// Loads in the latency pipe, oldest first.
    pub in_flight: Vec<InFlightLoad>,
    /// The port's local cycle counter.
    pub now: u64,
}

/// A memory write port: pairs an address token with a data token and
/// commits the store.
///
/// The two operands arrive on separate channel endpoints; a store
/// commits when both are available, consuming one token from each.
#[derive(Debug, Clone)]
pub struct WritePort {
    /// Incoming address tokens.
    pub addr_in: TaggedQueue,
    /// Incoming data tokens.
    pub data_in: TaggedQueue,
    committed: u64,
}

impl WritePort {
    /// Creates a write port with the given queue capacity.
    pub fn new(queue_capacity: usize) -> Self {
        WritePort {
            addr_in: TaggedQueue::new(queue_capacity),
            data_in: TaggedQueue::new(queue_capacity),
            committed: 0,
        }
    }

    /// Advances the port one cycle, committing at most one store.
    pub fn step(&mut self, memory: &mut Memory) {
        if !self.addr_in.is_empty() && !self.data_in.is_empty() {
            let addr = self.addr_in.pop().expect("checked non-empty");
            let data = self.data_in.pop().expect("checked non-empty");
            memory.write(addr.data, data.data);
            self.committed += 1;
        }
    }

    /// Total stores committed so far.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Whether the port has no buffered work.
    pub fn is_idle(&self) -> bool {
        self.addr_in.is_empty() && self.data_in.is_empty()
    }

    /// Captures the complete port state.
    pub fn snapshot(&self) -> WritePortState {
        WritePortState {
            addr_in: self.addr_in.snapshot(),
            data_in: self.data_in.snapshot(),
            committed: self.committed,
        }
    }

    /// Restores a snapshot taken from a port of the same shape.
    ///
    /// # Errors
    ///
    /// Fails when queue capacities differ.
    pub fn restore(&mut self, state: &WritePortState) -> Result<(), RestoreError> {
        self.addr_in.restore(&state.addr_in)?;
        self.data_in.restore(&state.data_in)?;
        self.committed = state.committed;
        Ok(())
    }
}

/// Serializable snapshot of a [`WritePort`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WritePortState {
    /// Address queue state.
    pub addr_in: QueueState,
    /// Data queue state.
    pub data_in: QueueState,
    /// Total stores committed.
    pub committed: u64,
}

/// A sequential (auto-incrementing) write port: consumes data tokens
/// and stores them at consecutive addresses from a configured base.
///
/// This is the streaming-store endpoint of the distributed memory
/// operation scheme the paper builds on (§2.2 cites performing loads
/// and stores "via the queues using read and write ports as endpoints
/// for designated channels"); it lets a producer PE store an ordered
/// result stream without spending instructions generating addresses.
#[derive(Debug, Clone)]
pub struct SequentialWritePort {
    /// Incoming data tokens.
    pub data_in: TaggedQueue,
    next: Word,
    committed: u64,
}

impl SequentialWritePort {
    /// Creates a sequential write port storing from `base` upward.
    pub fn new(queue_capacity: usize, base: Word) -> Self {
        SequentialWritePort {
            data_in: TaggedQueue::new(queue_capacity),
            next: base,
            committed: 0,
        }
    }

    /// Advances the port one cycle, committing at most one store.
    pub fn step(&mut self, memory: &mut Memory) {
        if let Some(token) = self.data_in.pop() {
            memory.write(self.next, token.data);
            self.next = self.next.wrapping_add(1);
            self.committed += 1;
        }
    }

    /// Total stores committed so far.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// The next address to be written.
    pub fn next_addr(&self) -> Word {
        self.next
    }

    /// Whether the port has no buffered work.
    pub fn is_idle(&self) -> bool {
        self.data_in.is_empty()
    }

    /// Captures the complete port state.
    pub fn snapshot(&self) -> SeqWritePortState {
        SeqWritePortState {
            data_in: self.data_in.snapshot(),
            next: self.next,
            committed: self.committed,
        }
    }

    /// Restores a snapshot taken from a port of the same shape.
    ///
    /// # Errors
    ///
    /// Fails when the queue capacity differs.
    pub fn restore(&mut self, state: &SeqWritePortState) -> Result<(), RestoreError> {
        self.data_in.restore(&state.data_in)?;
        self.next = state.next;
        self.committed = state.committed;
        Ok(())
    }
}

/// Serializable snapshot of a [`SequentialWritePort`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeqWritePortState {
    /// Data queue state.
    pub data_in: QueueState,
    /// The next address to be written.
    pub next: Word,
    /// Total stores committed.
    pub committed: u64,
}

/// Builds an address token (plain-data tag) for a read/write port.
pub fn addr_token(addr: Word) -> Token {
    Token::new(Tag::ZERO, addr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_port_honors_latency() {
        let mem = Memory::from_words(vec![10, 20, 30]);
        let mut port = ReadPort::new(4, DEFAULT_LOAD_LATENCY);
        assert!(port.addr_in.push(addr_token(2)));
        // Request accepted on the first step; data appears `latency`
        // cycles later.
        let mut arrival = None;
        for cycle in 1..=10 {
            port.step(&mem);
            if !port.data_out.is_empty() {
                arrival = Some(cycle);
                break;
            }
        }
        assert_eq!(arrival, Some(1 + DEFAULT_LOAD_LATENCY as u64));
        assert_eq!(port.data_out.pop().unwrap().data, 30);
    }

    #[test]
    fn read_port_pipelines_back_to_back_requests() {
        let mem = Memory::from_words((0..16).collect());
        let mut port = ReadPort::new(4, 4);
        let _ = port.addr_in.push(addr_token(1));
        let _ = port.addr_in.push(addr_token(2));
        let mut results = Vec::new();
        for _ in 0..12 {
            port.step(&mem);
            while let Some(t) = port.data_out.pop() {
                results.push(t.data);
            }
        }
        // Fully pipelined: responses in consecutive cycles, in order.
        assert_eq!(results, vec![1, 2]);
        assert!(port.is_idle());
    }

    #[test]
    fn read_port_preserves_request_tags() {
        let params = tia_isa::Params::default();
        let mem = Memory::from_words(vec![5]);
        let mut port = ReadPort::new(2, 1);
        let eos = Tag::new(1, &params).unwrap();
        assert!(port.addr_in.push(Token::new(eos, 0)));
        for _ in 0..4 {
            port.step(&mem);
        }
        let t = port.data_out.pop().unwrap();
        assert_eq!(t.tag, eos);
        assert_eq!(t.data, 5);
    }

    #[test]
    fn read_port_stalls_when_response_queue_full() {
        let mem = Memory::from_words((0..8).collect());
        let mut port = ReadPort::new(2, 1);
        for a in 0..2 {
            assert!(port.addr_in.push(addr_token(a)));
        }
        // Never drain data_out; in-flight + buffered must not exceed
        // the response capacity, and no token may be lost.
        for _ in 0..20 {
            port.step(&mem);
        }
        assert_eq!(port.data_out.occupancy(), 2);
        assert_eq!(port.data_out.pop().unwrap().data, 0);
        assert_eq!(port.data_out.pop().unwrap().data, 1);
    }

    #[test]
    fn write_port_pairs_addr_and_data() {
        let mut mem = Memory::new(8);
        let mut port = WritePort::new(2);
        assert!(port.addr_in.push(addr_token(3)));
        port.step(&mut mem); // data not yet available: no commit
        assert_eq!(port.committed(), 0);
        assert!(port.data_in.push(Token::data(42)));
        port.step(&mut mem);
        assert_eq!(port.committed(), 1);
        assert_eq!(mem.read(3), 42);
        assert!(port.is_idle());
    }

    #[test]
    fn out_of_bounds_accesses_are_harmless() {
        let mut mem = Memory::new(2);
        mem.write(100, 9);
        assert_eq!(mem.read(100), 0);
        assert_eq!(mem.len(), 2);
    }
}
