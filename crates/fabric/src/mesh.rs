//! Mesh topology helpers: the paper's PEs are "arranged in small-scale
//! spatial arrays (maximum 4 × 4 to fit on a Zynq SoC-FPGA)" with
//! nearest-neighbour channels.
//!
//! A [`MeshBuilder`] wires an R×C grid of PEs with the conventional
//! port mapping — input/output queue 0 = north, 1 = east, 2 = south,
//! 3 = west — so a PE's output toward a direction feeds its
//! neighbour's input from the opposite direction. Edge ports stay
//! free for memory ports and host streams.

use tia_isa::IsaError;

use crate::system::{InputRef, OutputRef, ProcessingElement, System};

/// Compass directions used for mesh port numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Port 0.
    North,
    /// Port 1.
    East,
    /// Port 2.
    South,
    /// Port 3.
    West,
}

impl Direction {
    /// All directions in port order.
    pub const ALL: [Direction; 4] = [
        Direction::North,
        Direction::East,
        Direction::South,
        Direction::West,
    ];

    /// The queue index conventionally assigned to this direction.
    pub fn port(self) -> usize {
        match self {
            Direction::North => 0,
            Direction::East => 1,
            Direction::South => 2,
            Direction::West => 3,
        }
    }

    /// The opposite direction (where a neighbour receives from).
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::East => Direction::West,
            Direction::South => Direction::North,
            Direction::West => Direction::East,
        }
    }

    /// Row/column offset of the neighbour in this direction.
    pub fn offset(self) -> (isize, isize) {
        match self {
            Direction::North => (-1, 0),
            Direction::East => (0, 1),
            Direction::South => (1, 0),
            Direction::West => (0, -1),
        }
    }
}

/// A grid coordinate in a mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Row, 0 at the top.
    pub row: usize,
    /// Column, 0 at the left.
    pub col: usize,
}

/// Wires an R×C grid of already-added PEs into a nearest-neighbour
/// mesh.
///
/// # Examples
///
/// Build a 2×2 mesh (the paper's multi-PE workload size):
///
/// ```
/// use tia_fabric::mesh::{Coord, Direction, MeshBuilder};
/// # use tia_fabric::{Memory, ProcessingElement, System, TaggedQueue, Token};
/// # #[derive(Debug)]
/// # struct P { q: Vec<TaggedQueue> }
/// # impl P {
/// #     fn new() -> P {
/// #         P { q: (0..8).map(|_| TaggedQueue::new(2)).collect() }
/// #     }
/// # }
/// # impl ProcessingElement for P {
/// #     fn step(&mut self) {}
/// #     fn input_queue_mut(&mut self, i: usize) -> &mut TaggedQueue { &mut self.q[i] }
/// #     fn output_queue_mut(&mut self, i: usize) -> &mut TaggedQueue { &mut self.q[4 + i] }
/// #     fn is_halted(&self) -> bool { true }
/// # }
/// let mut sys: System<P> = System::new(Memory::new(0));
/// let mesh = MeshBuilder::new(2, 2)
///     .with_pes(&mut sys, |_coord| P::new())
///     .connect(&mut sys)?;
/// assert_eq!(mesh.pe_index(Coord { row: 1, col: 0 }), Some(2));
/// # Ok::<(), tia_isa::IsaError>(())
/// ```
#[derive(Debug)]
pub struct MeshBuilder {
    rows: usize,
    cols: usize,
    indices: Vec<usize>,
}

/// The wired mesh: a map from grid coordinates to PE indices.
#[derive(Debug, Clone)]
pub struct Mesh {
    rows: usize,
    cols: usize,
    indices: Vec<usize>,
}

impl MeshBuilder {
    /// Starts a mesh of the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions or a grid larger than the paper's
    /// maximum 4×4 Zynq arrangement.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "mesh dimensions must be positive");
        assert!(
            rows <= 4 && cols <= 4,
            "the prototype arrays are at most 4x4 (paper §2.3)"
        );
        MeshBuilder {
            rows,
            cols,
            indices: Vec::new(),
        }
    }

    /// Adds one PE per grid cell (row-major) built by `make`.
    pub fn with_pes<P, F>(mut self, system: &mut System<P>, mut make: F) -> Self
    where
        P: ProcessingElement,
        F: FnMut(Coord) -> P,
    {
        for row in 0..self.rows {
            for col in 0..self.cols {
                let pe = system.add_pe(make(Coord { row, col }));
                self.indices.push(pe);
            }
        }
        self
    }

    /// Uses existing PE indices (row-major) instead of creating PEs.
    ///
    /// # Panics
    ///
    /// Panics when the index count does not match the grid size.
    pub fn with_existing(mut self, indices: Vec<usize>) -> Self {
        assert_eq!(
            indices.len(),
            self.rows * self.cols,
            "need exactly rows x cols PE indices"
        );
        self.indices = indices;
        self
    }

    /// Connects every interior nearest-neighbour channel pair and
    /// returns the mesh map. Edge-facing ports are left unconnected
    /// for memory ports and host streams.
    ///
    /// # Errors
    ///
    /// Propagates [`System::connect`] errors (e.g. a port already in
    /// use).
    pub fn connect<P: ProcessingElement>(self, system: &mut System<P>) -> Result<Mesh, IsaError> {
        assert_eq!(
            self.indices.len(),
            self.rows * self.cols,
            "call with_pes or with_existing first"
        );
        let mesh = Mesh {
            rows: self.rows,
            cols: self.cols,
            indices: self.indices,
        };
        for row in 0..mesh.rows {
            for col in 0..mesh.cols {
                let from = Coord { row, col };
                for dir in [Direction::East, Direction::South] {
                    let Some(to) = mesh.neighbor(from, dir) else {
                        continue;
                    };
                    // from --dir--> to, and back.
                    system.connect(
                        OutputRef::Pe {
                            pe: mesh.indices[mesh.flat(from)],
                            queue: dir.port(),
                        },
                        InputRef::Pe {
                            pe: mesh.indices[mesh.flat(to)],
                            queue: dir.opposite().port(),
                        },
                    )?;
                    system.connect(
                        OutputRef::Pe {
                            pe: mesh.indices[mesh.flat(to)],
                            queue: dir.opposite().port(),
                        },
                        InputRef::Pe {
                            pe: mesh.indices[mesh.flat(from)],
                            queue: dir.port(),
                        },
                    )?;
                }
            }
        }
        Ok(mesh)
    }
}

impl Mesh {
    fn flat(&self, c: Coord) -> usize {
        c.row * self.cols + c.col
    }

    /// Grid dimensions `(rows, cols)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The PE index at a coordinate, if in bounds.
    pub fn pe_index(&self, c: Coord) -> Option<usize> {
        if c.row < self.rows && c.col < self.cols {
            Some(self.indices[self.flat(c)])
        } else {
            None
        }
    }

    /// The neighbouring coordinate in a direction, if in bounds.
    pub fn neighbor(&self, c: Coord, dir: Direction) -> Option<Coord> {
        let (dr, dc) = dir.offset();
        let row = c.row.checked_add_signed(dr)?;
        let col = c.col.checked_add_signed(dc)?;
        if row < self.rows && col < self.cols {
            Some(Coord { row, col })
        } else {
            None
        }
    }

    /// Number of bidirectional nearest-neighbour links.
    pub fn num_links(&self) -> usize {
        self.rows * (self.cols - 1) + (self.rows - 1) * self.cols
    }

    /// `(pe index, "rR,cC")` labels for every grid cell, for naming
    /// per-PE tracks in trace exports.
    pub fn pe_labels(&self) -> Vec<(u16, String)> {
        let mut labels = Vec::with_capacity(self.indices.len());
        for row in 0..self.rows {
            for col in 0..self.cols {
                let index = self.indices[self.flat(Coord { row, col })];
                labels.push((index as u16, format!("r{row},c{col}")));
            }
        }
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::Memory;
    use crate::queue::{TaggedQueue, Token};

    /// A PE that forwards every input token to the opposite output
    /// port (a wire-through router).
    #[derive(Debug)]
    struct Router {
        inputs: Vec<TaggedQueue>,
        outputs: Vec<TaggedQueue>,
    }

    impl Router {
        fn new() -> Router {
            Router {
                inputs: (0..4).map(|_| TaggedQueue::new(2)).collect(),
                outputs: (0..4).map(|_| TaggedQueue::new(2)).collect(),
            }
        }
    }

    impl ProcessingElement for Router {
        fn step(&mut self) {
            for dir in Direction::ALL {
                let out = dir.opposite().port();
                if !self.outputs[out].is_full() {
                    if let Some(t) = self.inputs[dir.port()].pop() {
                        let pushed = self.outputs[out].push(t);
                        debug_assert!(pushed);
                    }
                }
            }
        }

        fn input_queue_mut(&mut self, index: usize) -> &mut TaggedQueue {
            &mut self.inputs[index]
        }

        fn output_queue_mut(&mut self, index: usize) -> &mut TaggedQueue {
            &mut self.outputs[index]
        }

        fn is_halted(&self) -> bool {
            false
        }
    }

    #[test]
    fn four_by_four_wires_24_bidirectional_links() {
        let mut sys: System<Router> = System::new(Memory::new(0));
        let mesh = MeshBuilder::new(4, 4)
            .with_pes(&mut sys, |_| Router::new())
            .connect(&mut sys)
            .expect("wires");
        assert_eq!(mesh.num_links(), 24);
        assert_eq!(sys.num_pes(), 16);
    }

    #[test]
    fn tokens_ripple_across_a_row() {
        // Inject a token into the west edge of (0,0); routers forward
        // west-to-east, so it must emerge from (0,2)'s east port.
        let mut sys: System<Router> = System::new(Memory::new(0));
        let mesh = MeshBuilder::new(1, 3)
            .with_pes(&mut sys, |_| Router::new())
            .connect(&mut sys)
            .expect("wires");
        let first = mesh.pe_index(Coord { row: 0, col: 0 }).unwrap();
        let last = mesh.pe_index(Coord { row: 0, col: 2 }).unwrap();
        assert!(sys
            .pe_mut(first)
            .input_queue_mut(Direction::West.port())
            .push(Token::data(99)));
        for _ in 0..12 {
            sys.step();
        }
        let east = sys.pe_mut(last).output_queue_mut(Direction::East.port());
        assert_eq!(east.pop().map(|t| t.data), Some(99));
    }

    #[test]
    fn neighbor_math_respects_edges() {
        let mesh = Mesh {
            rows: 2,
            cols: 2,
            indices: vec![0, 1, 2, 3],
        };
        let origin = Coord { row: 0, col: 0 };
        assert_eq!(mesh.neighbor(origin, Direction::North), None);
        assert_eq!(mesh.neighbor(origin, Direction::West), None);
        assert_eq!(
            mesh.neighbor(origin, Direction::East),
            Some(Coord { row: 0, col: 1 })
        );
        assert_eq!(
            mesh.neighbor(origin, Direction::South),
            Some(Coord { row: 1, col: 0 })
        );
        assert_eq!(mesh.pe_index(Coord { row: 2, col: 0 }), None);
    }

    #[test]
    #[should_panic(expected = "at most 4x4")]
    fn oversized_meshes_are_rejected() {
        let _ = MeshBuilder::new(5, 2);
    }

    #[test]
    fn directions_are_involutive() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
            let (dr, dc) = d.offset();
            let (or, oc) = d.opposite().offset();
            assert_eq!((dr + or, dc + oc), (0, 0));
        }
    }
}
