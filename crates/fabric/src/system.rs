//! The spatial system: PEs, memory ports, host streams, and the
//! point-to-point channels that connect them.
//!
//! Both the functional simulator (`tia-sim`) and the cycle-level
//! microarchitecture model (`tia-core`) plug their PE types into
//! [`System`] through the [`ProcessingElement`] trait, so multi-PE
//! workloads run unchanged on either.

use std::fmt;

use serde::{Deserialize, Serialize, Value};
use tia_isa::{IsaError, Word};
use tia_trace::{EventKind, QueueDir, RingTracer, TraceEvent, Tracer};

use crate::memory::{
    Memory, ReadPort, ReadPortState, SeqWritePortState, SequentialWritePort, WritePort,
    WritePortState,
};
use crate::queue::{RestoreError, TaggedQueue};
use crate::stream::{StreamSink, StreamSinkState, StreamSource, StreamSourceState};

/// A processing element pluggable into a [`System`].
///
/// The trait deliberately exposes only what the fabric needs: a clock
/// edge, the PE's channel endpoints, and halt status. The progress
/// probes (`num_input_queues`, `num_output_queues`,
/// `retired_instructions`) default to zero so minimal PE models keep
/// working; real PE models override them to make watchdog-style
/// liveness monitoring meaningful.
pub trait ProcessingElement {
    /// Advances the PE one cycle.
    fn step(&mut self);

    /// The PE's input queues (fabric delivers tokens here).
    fn input_queue_mut(&mut self, index: usize) -> &mut TaggedQueue;

    /// The PE's output queues (fabric drains tokens from here).
    fn output_queue_mut(&mut self, index: usize) -> &mut TaggedQueue;

    /// Whether the PE has retired a `halt` instruction.
    fn is_halted(&self) -> bool;

    /// How many input queues the PE exposes (0 when unknown).
    fn num_input_queues(&self) -> usize {
        0
    }

    /// How many output queues the PE exposes (0 when unknown).
    fn num_output_queues(&self) -> usize {
        0
    }

    /// Total instructions retired so far (0 when the model doesn't
    /// count retirements).
    fn retired_instructions(&self) -> u64 {
        0
    }

    /// The earliest cycle at which this PE's architecturally visible
    /// state *can* change, given the system cycle counter `now` (the
    /// number of completed cycles; the next step simulates cycle
    /// `now`).
    ///
    /// * `Some(c)` with `c <= now` — the PE may do work on the very
    ///   next step; nothing can be skipped.
    /// * `Some(c)` with `c > now` — the PE is provably inert until
    ///   cycle `c`: every step before `c` would repeat the same
    ///   stall/idle bookkeeping with no architectural change (queues,
    ///   registers, predicates, halt state all frozen), provided no
    ///   token lands on its queues in the meantime.
    /// * `None` — only external input (a fabric transfer into one of
    ///   its queues) can wake the PE.
    ///
    /// The default is conservatively `Some(now)` — always active — so
    /// custom PE models are correct without opting in. Implementations
    /// must pair any `> now`/`None` answer with a matching
    /// [`ProcessingElement::skip_cycles`] that bulk-applies the skipped
    /// cycles' bookkeeping bit-identically.
    fn next_event_cycle(&self, now: u64) -> Option<u64> {
        Some(now)
    }

    /// Bulk-applies `cycles` inert cycles' worth of per-cycle
    /// bookkeeping (stall/idle counters, local clocks, stall trace
    /// events) exactly as if [`ProcessingElement::step`] had been
    /// called `cycles` times while the PE was inert.
    ///
    /// Only called by the fast-forward engine, and only for spans the
    /// PE itself declared inert via
    /// [`ProcessingElement::next_event_cycle`]. The default is a no-op,
    /// matching the default always-active `next_event_cycle` (a PE that
    /// never declares itself inert is never asked to skip).
    fn skip_cycles(&mut self, cycles: u64) {
        let _ = cycles;
    }
}

/// A component whose complete state can be captured as a serde
/// [`Value`] and later restored into an identically-shaped instance.
///
/// This is the PE-side hook for whole-[`System`] checkpointing: the
/// fabric owns the port/stream/memory state, and delegates PE state to
/// this trait because PE internals are model-specific.
pub trait Snapshotable {
    /// Captures the complete state of this component.
    fn save_state(&self) -> Value;

    /// Restores state captured by [`Snapshotable::save_state`] from a
    /// component of the same shape.
    ///
    /// # Errors
    ///
    /// Fails when the value does not parse as this component's state or
    /// its shape (queue capacities, register counts, ...) differs.
    fn restore_state(&mut self, state: &Value) -> Result<(), RestoreError>;
}

/// A producer-side channel endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OutputRef {
    /// Output queue `queue` of PE `pe`.
    Pe {
        /// PE index.
        pe: usize,
        /// Output queue index within the PE.
        queue: usize,
    },
    /// The data-response endpoint of read port `port`.
    ReadData {
        /// Read-port index.
        port: usize,
    },
    /// Host stream source `source`.
    Source {
        /// Source index.
        source: usize,
    },
}

/// A consumer-side channel endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputRef {
    /// Input queue `queue` of PE `pe`.
    Pe {
        /// PE index.
        pe: usize,
        /// Input queue index within the PE.
        queue: usize,
    },
    /// The address-request endpoint of read port `port`.
    ReadAddr {
        /// Read-port index.
        port: usize,
    },
    /// The address endpoint of write port `port`.
    WriteAddr {
        /// Write-port index.
        port: usize,
    },
    /// The data endpoint of write port `port`.
    WriteData {
        /// Write-port index.
        port: usize,
    },
    /// The data endpoint of sequential (auto-incrementing) write port
    /// `port`.
    SeqWriteData {
        /// Sequential-write-port index.
        port: usize,
    },
    /// Host stream sink `sink`.
    Sink {
        /// Sink index.
        sink: usize,
    },
}

/// A point-to-point channel: each cycle at most one token moves from
/// the producer endpoint to the consumer endpoint (one-cycle link
/// latency, ideal for nearest-neighbour spatial interconnect).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Link {
    /// The producing endpoint.
    pub from: OutputRef,
    /// The consuming endpoint.
    pub to: InputRef,
}

/// Why [`System::run`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The caller's condition became true.
    Condition,
    /// The cycle limit elapsed first.
    CycleLimit,
}

/// A complete spatial system under simulation.
///
/// Within a cycle the phases are: PEs step, then channels transfer,
/// then memory ports and host streams step. A token produced in cycle
/// *t* is therefore visible to its consumer in cycle *t + 1*, modelling
/// single-cycle nearest-neighbour links.
#[derive(Debug)]
pub struct System<P> {
    pes: Vec<P>,
    memory: Memory,
    read_ports: Vec<ReadPort>,
    write_ports: Vec<WritePort>,
    seq_write_ports: Vec<SequentialWritePort>,
    sources: Vec<StreamSource>,
    sinks: Vec<StreamSink>,
    links: Vec<Link>,
    cycle: u64,
    /// Fabric-level event tracer: records a `QueueOp` for every token
    /// moved over a PE channel endpoint. `None` (the default) costs one
    /// branch per transferred token.
    tracer: Option<RingTracer>,
    /// Whether [`System::run_until`] may fast-forward across provably
    /// inert spans (see [`System::idle_horizon`]). Defaults to the
    /// `TIA_FAST_FORWARD` environment variable (off when set to `0`,
    /// `false`, `off` or `no`; on otherwise).
    fast_forward: bool,
    /// Fast-forward effectiveness counters. Non-architectural: not
    /// part of [`SystemState`], so snapshots stay bit-identical with
    /// the engine on or off.
    ff_stats: FastForwardStats,
    /// Consecutive *unproductive* idle-horizon probes: misses, plus
    /// hits whose yield was below [`PROBE_YIELD_FLOOR`] (a probe is a
    /// full-fabric scan; skipping a couple of cycles does not pay for
    /// one). Non-architectural (probe scheduling only).
    probe_misses: u32,
    /// Idle cycles left before the next probe is allowed: exponential
    /// backoff (`2^min(misses, 6)`) after consecutive unproductive
    /// probes, so a compute-dense run with scattered short stalls does
    /// not pay a full-fabric scan on every one of them. Only a
    /// high-yield hit (≥ [`PROBE_YIELD_FLOOR`] cycles) resets it —
    /// deliberately *not* any retiring cycle, because compute
    /// interleaved with short stalls would then re-arm an immediate
    /// probe per stall episode. The cap bounds the cost: a genuinely
    /// idle phase steps at most 64 extra cycles before the probe that
    /// bulk-skips it. Forgoing a probe only trades a bulk skip for
    /// identical stepped cycles — bit-identity holds.
    probe_cooldown: u64,
}

/// Probe yield (bulk-skipped cycles) below which a hit still feeds the
/// exponential probe backoff: the skip is taken (those cycles are
/// free), but the *next* probe is delayed, because a full-fabric
/// quiescence scan costs more than stepping a handful of inert cycles.
const PROBE_YIELD_FLOOR: u64 = 16;

/// Effectiveness counters for the quiescence-aware fast-forward
/// engine: how often the idle-horizon probe ran, how often it found a
/// skippable span, and how many cycles were bulk-skipped instead of
/// stepped. Harness binaries (`dse_bench`) report these per
/// configuration so the engine's observed speedup can be explained by
/// data (a compute-dense sweep skips almost nothing; an idle-dominated
/// run skips almost everything).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FastForwardStats {
    /// Idle-horizon probes performed.
    pub probes: u64,
    /// Probes that found a nonzero skippable span.
    pub probe_hits: u64,
    /// Cycles advanced via [`System::skip_cycles`] rather than
    /// [`System::step`].
    pub skipped_cycles: u64,
    /// Probes suppressed by the exponential unproductive-probe backoff
    /// (idle cycles that would have probed without it).
    pub suppressed_probes: u64,
}

/// Parses a `TIA_FAST_FORWARD`-style boolean toggle. Accepts
/// `1`/`true`/`on`/`yes` and `0`/`false`/`off`/`no` (case-insensitive,
/// whitespace-trimmed); anything else — including an empty string — is
/// an error naming the variable and the offending value, never a
/// silent default.
pub fn parse_toggle(name: &str, value: &str) -> Result<bool, String> {
    match value.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "on" | "yes" => Ok(true),
        "0" | "false" | "off" | "no" => Ok(false),
        _ => Err(format!(
            "invalid {name} value `{value}`: expected one of 1/true/on/yes or 0/false/off/no"
        )),
    }
}

/// Reads the `TIA_FAST_FORWARD` environment variable: unset enables
/// fast-forwarding (the default), otherwise the value must parse via
/// [`parse_toggle`] — a malformed value panics with a clear message
/// rather than being quietly treated as "on". This is the default for
/// every new [`System`]; CLI tools use it to pick their own
/// fast-forward default so one knob controls both.
pub fn fast_forward_from_env() -> bool {
    match std::env::var("TIA_FAST_FORWARD") {
        Ok(v) => match parse_toggle("TIA_FAST_FORWARD", &v) {
            Ok(enabled) => enabled,
            Err(message) => panic!("{message}"),
        },
        Err(std::env::VarError::NotPresent) => true,
        Err(std::env::VarError::NotUnicode(_)) => {
            panic!("invalid TIA_FAST_FORWARD value: not valid UTF-8")
        }
    }
}

impl<P: ProcessingElement> System<P> {
    /// Creates a system over a data memory.
    pub fn new(memory: Memory) -> Self {
        System {
            pes: Vec::new(),
            memory,
            read_ports: Vec::new(),
            write_ports: Vec::new(),
            seq_write_ports: Vec::new(),
            sources: Vec::new(),
            sinks: Vec::new(),
            links: Vec::new(),
            cycle: 0,
            tracer: None,
            fast_forward: fast_forward_from_env(),
            ff_stats: FastForwardStats::default(),
            probe_misses: 0,
            probe_cooldown: 0,
        }
    }

    /// Starts recording fabric channel traffic into a ring tracer with
    /// the default capacity (see [`tia_trace::RingTracer`]).
    pub fn enable_tracing(&mut self) {
        self.tracer = Some(RingTracer::with_default_capacity());
    }

    /// Starts recording fabric channel traffic, retaining at most
    /// `capacity` events.
    pub fn enable_tracing_with_capacity(&mut self, capacity: usize) {
        self.tracer = Some(RingTracer::new(capacity));
    }

    /// Stops tracing and hands back the recorded fabric events.
    pub fn take_tracer(&mut self) -> Option<RingTracer> {
        self.tracer.take()
    }

    /// Adds a PE, returning its index.
    pub fn add_pe(&mut self, pe: P) -> usize {
        self.pes.push(pe);
        self.pes.len() - 1
    }

    /// Adds a memory read port, returning its index.
    pub fn add_read_port(&mut self, port: ReadPort) -> usize {
        self.read_ports.push(port);
        self.read_ports.len() - 1
    }

    /// Adds a memory write port, returning its index.
    pub fn add_write_port(&mut self, port: WritePort) -> usize {
        self.write_ports.push(port);
        self.write_ports.len() - 1
    }

    /// Adds a sequential write port, returning its index.
    pub fn add_seq_write_port(&mut self, port: SequentialWritePort) -> usize {
        self.seq_write_ports.push(port);
        self.seq_write_ports.len() - 1
    }

    /// Adds a host stream source, returning its index.
    pub fn add_source(&mut self, source: StreamSource) -> usize {
        self.sources.push(source);
        self.sources.len() - 1
    }

    /// Adds a host stream sink, returning its index.
    pub fn add_sink(&mut self, sink: StreamSink) -> usize {
        self.sinks.push(sink);
        self.sinks.len() - 1
    }

    /// Connects a producer endpoint to a consumer endpoint.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::InvalidProgram`] when either endpoint is
    /// already connected (channels are point-to-point) or does not
    /// exist.
    pub fn connect(&mut self, from: OutputRef, to: InputRef) -> Result<(), IsaError> {
        self.check_output(from)?;
        self.check_input(to)?;
        if self.links.iter().any(|l| l.from == from) {
            return Err(IsaError::InvalidProgram(format!(
                "producer endpoint {from:?} already connected"
            )));
        }
        if self.links.iter().any(|l| l.to == to) {
            return Err(IsaError::InvalidProgram(format!(
                "consumer endpoint {to:?} already connected"
            )));
        }
        self.links.push(Link { from, to });
        Ok(())
    }

    fn check_output(&self, from: OutputRef) -> Result<(), IsaError> {
        let ok = match from {
            OutputRef::Pe { pe, .. } => pe < self.pes.len(),
            OutputRef::ReadData { port } => port < self.read_ports.len(),
            OutputRef::Source { source } => source < self.sources.len(),
        };
        if ok {
            Ok(())
        } else {
            Err(IsaError::InvalidProgram(format!(
                "producer endpoint {from:?} does not exist"
            )))
        }
    }

    fn check_input(&self, to: InputRef) -> Result<(), IsaError> {
        let ok = match to {
            InputRef::Pe { pe, .. } => pe < self.pes.len(),
            InputRef::ReadAddr { port } => port < self.read_ports.len(),
            InputRef::WriteAddr { port } | InputRef::WriteData { port } => {
                port < self.write_ports.len()
            }
            InputRef::SeqWriteData { port } => port < self.seq_write_ports.len(),
            InputRef::Sink { sink } => sink < self.sinks.len(),
        };
        if ok {
            Ok(())
        } else {
            Err(IsaError::InvalidProgram(format!(
                "consumer endpoint {to:?} does not exist"
            )))
        }
    }

    /// Every channel wired so far, in connection order. Static
    /// analyzers (`tia-lint`) use this to build the inter-PE channel
    /// dependency graph without running the system.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Whether [`System::run_until`] may fast-forward across provably
    /// inert spans.
    pub fn fast_forward(&self) -> bool {
        self.fast_forward
    }

    /// Enables or disables fast-forwarding (overriding the
    /// `TIA_FAST_FORWARD` default). Fast-forwarding is exact — counters,
    /// traces and checkpoints are bit-identical either way — so this
    /// knob exists for differential testing and benchmarking.
    pub fn set_fast_forward(&mut self, enable: bool) {
        self.fast_forward = enable;
        self.probe_misses = 0;
        self.probe_cooldown = 0;
    }

    /// Immutable access to a PE.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn pe(&self, index: usize) -> &P {
        &self.pes[index]
    }

    /// Mutable access to a PE.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn pe_mut(&mut self, index: usize) -> &mut P {
        &mut self.pes[index]
    }

    /// Number of PEs in the system.
    pub fn num_pes(&self) -> usize {
        self.pes.len()
    }

    /// The shared data memory.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Mutable access to the shared data memory (host preloading).
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.memory
    }

    /// A sink's collected tokens.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn sink(&self, index: usize) -> &StreamSink {
        &self.sinks[index]
    }

    /// Number of memory read ports.
    pub fn num_read_ports(&self) -> usize {
        self.read_ports.len()
    }

    /// Immutable access to a memory read port (profilers inspect
    /// in-flight loads to attribute memory-latency stalls).
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn read_port(&self, index: usize) -> &ReadPort {
        &self.read_ports[index]
    }

    /// Number of memory write ports.
    pub fn num_write_ports(&self) -> usize {
        self.write_ports.len()
    }

    /// Immutable access to a memory write port.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn write_port(&self, index: usize) -> &WritePort {
        &self.write_ports[index]
    }

    /// Number of sequential write ports.
    pub fn num_seq_write_ports(&self) -> usize {
        self.seq_write_ports.len()
    }

    /// Immutable access to a sequential write port.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn seq_write_port(&self, index: usize) -> &SequentialWritePort {
        &self.seq_write_ports[index]
    }

    /// Number of host stream sources.
    pub fn num_sources(&self) -> usize {
        self.sources.len()
    }

    /// Number of host stream sinks.
    pub fn num_sinks(&self) -> usize {
        self.sinks.len()
    }

    /// The fast-forward effectiveness counters accumulated so far (see
    /// [`FastForwardStats`]). Non-architectural: excluded from
    /// snapshots and never consulted by the engine itself.
    pub fn fast_forward_stats(&self) -> FastForwardStats {
        self.ff_stats
    }

    /// Whether every PE has halted.
    pub fn all_halted(&self) -> bool {
        self.pes.iter().all(|p| p.is_halted())
    }

    /// Whether every memory port has drained its buffered and
    /// in-flight work. Workloads use this to wait for stores that were
    /// still travelling to a write port when the worker PE halted.
    pub fn ports_idle(&self) -> bool {
        self.read_ports.iter().all(|p| p.is_idle())
            && self.write_ports.iter().all(|p| p.is_idle())
            && self.seq_write_ports.iter().all(|p| p.is_idle())
    }

    /// Advances the whole system one cycle.
    pub fn step(&mut self) {
        for pe in &mut self.pes {
            if !pe.is_halted() {
                pe.step();
            }
        }
        self.transfer_links();
        for port in &mut self.read_ports {
            port.step(&self.memory);
        }
        for port in &mut self.write_ports {
            port.step(&mut self.memory);
        }
        for port in &mut self.seq_write_ports {
            port.step(&mut self.memory);
        }
        for source in &mut self.sources {
            source.step();
        }
        for sink in &mut self.sinks {
            sink.step();
        }
        self.cycle += 1;
    }

    fn transfer_links(&mut self) {
        for i in 0..self.links.len() {
            let Link { from, to } = self.links[i];
            // Peek destination space first so we never drop a token.
            let has_space = match to {
                InputRef::Pe { pe, queue } => !self.pes[pe].input_queue_mut(queue).is_full(),
                InputRef::ReadAddr { port } => !self.read_ports[port].addr_in.is_full(),
                InputRef::WriteAddr { port } => !self.write_ports[port].addr_in.is_full(),
                InputRef::WriteData { port } => !self.write_ports[port].data_in.is_full(),
                InputRef::SeqWriteData { port } => !self.seq_write_ports[port].data_in.is_full(),
                InputRef::Sink { sink } => !self.sinks[sink].input.is_full(),
            };
            if !has_space {
                continue;
            }
            let token = match from {
                OutputRef::Pe { pe, queue } => self.pes[pe].output_queue_mut(queue).pop(),
                OutputRef::ReadData { port } => self.read_ports[port].data_out.pop(),
                OutputRef::Source { source } => self.sources[source].out.pop(),
            };
            let Some(token) = token else { continue };
            let accepted = match to {
                InputRef::Pe { pe, queue } => self.pes[pe].input_queue_mut(queue).push(token),
                InputRef::ReadAddr { port } => self.read_ports[port].addr_in.push(token),
                InputRef::WriteAddr { port } => self.write_ports[port].addr_in.push(token),
                InputRef::WriteData { port } => self.write_ports[port].data_in.push(token),
                InputRef::SeqWriteData { port } => self.seq_write_ports[port].data_in.push(token),
                InputRef::Sink { sink } => self.sinks[sink].input.push(token),
            };
            debug_assert!(accepted, "space was checked before popping");
            if let Some(tracer) = &mut self.tracer {
                let cycle = self.cycle;
                if let OutputRef::Pe { pe, queue } = from {
                    let occupancy = self.pes[pe].output_queue_mut(queue).occupancy() as u16;
                    tracer.record(TraceEvent::new(
                        pe as u16,
                        cycle,
                        EventKind::QueueOp {
                            queue: queue as u16,
                            dir: QueueDir::Dequeue,
                            occupancy,
                        },
                    ));
                }
                if let InputRef::Pe { pe, queue } = to {
                    let occupancy = self.pes[pe].input_queue_mut(queue).occupancy() as u16;
                    tracer.record(TraceEvent::new(
                        pe as u16,
                        cycle,
                        EventKind::QueueOp {
                            queue: queue as u16,
                            dir: QueueDir::Enqueue,
                            occupancy,
                        },
                    ));
                }
            }
        }
    }

    /// Whether any channel could move a token on the next step: a
    /// producer endpoint holds a token and the consumer endpoint has
    /// space. While this is false and every component is inert, the
    /// whole system state is frozen.
    fn any_link_ready(&mut self) -> bool {
        for i in 0..self.links.len() {
            let Link { from, to } = self.links[i];
            let has_token = match from {
                OutputRef::Pe { pe, queue } => !self.pes[pe].output_queue_mut(queue).is_empty(),
                OutputRef::ReadData { port } => !self.read_ports[port].data_out.is_empty(),
                OutputRef::Source { source } => !self.sources[source].out.is_empty(),
            };
            if !has_token {
                continue;
            }
            let has_space = match to {
                InputRef::Pe { pe, queue } => !self.pes[pe].input_queue_mut(queue).is_full(),
                InputRef::ReadAddr { port } => !self.read_ports[port].addr_in.is_full(),
                InputRef::WriteAddr { port } => !self.write_ports[port].addr_in.is_full(),
                InputRef::WriteData { port } => !self.write_ports[port].data_in.is_full(),
                InputRef::SeqWriteData { port } => !self.seq_write_ports[port].data_in.is_full(),
                InputRef::Sink { sink } => !self.sinks[sink].input.is_full(),
            };
            if has_space {
                return true;
            }
        }
        false
    }

    /// How many cycles (at most `limit`) the system can provably skip
    /// from its current state without any architecturally visible
    /// change: no channel can transfer, and every component reports —
    /// via [`ProcessingElement::next_event_cycle`] and the
    /// port/stream equivalents — that it cannot act before the horizon.
    ///
    /// Because nothing can act inside the horizon, the state at every
    /// skipped cycle equals the current state (inductively: a cycle
    /// changes state only through a component doing work or a link
    /// transferring, and neither is possible), which is what makes
    /// [`System::skip_cycles`] exact. Returns `0` whenever any
    /// component may act on the next step.
    ///
    /// Each call counts as one probe in [`System::fast_forward_stats`]
    /// (a hit when the returned horizon is nonzero).
    pub fn idle_horizon(&mut self, limit: u64) -> u64 {
        let horizon = self.idle_horizon_inner(limit);
        self.ff_stats.probes += 1;
        if horizon > 0 {
            self.ff_stats.probe_hits += 1;
        }
        horizon
    }

    fn idle_horizon_inner(&mut self, limit: u64) -> u64 {
        if limit == 0 || self.any_link_ready() {
            return 0;
        }
        let now = self.cycle;
        // The earliest cycle any component can act; u64::MAX when every
        // component waits on external input (deadlock or quiescence).
        let mut wake = u64::MAX;
        for pe in &self.pes {
            if pe.is_halted() {
                continue;
            }
            match pe.next_event_cycle(now) {
                Some(c) if c <= now => return 0,
                Some(c) => wake = wake.min(c),
                None => {}
            }
        }
        for port in &self.read_ports {
            match port.next_event_cycle(now) {
                Some(c) if c <= now => return 0,
                Some(c) => wake = wake.min(c),
                None => {}
            }
        }
        // Write ports commit one store per step whenever both operands
        // are buffered; stream sources stage a token whenever one
        // remains and the outbound queue has space; sinks drain any
        // buffered input. None of them owns a clock, so each is either
        // ready now or woken only by external input.
        for port in &self.write_ports {
            if !port.addr_in.is_empty() && !port.data_in.is_empty() {
                return 0;
            }
        }
        for port in &self.seq_write_ports {
            if !port.data_in.is_empty() {
                return 0;
            }
        }
        for source in &self.sources {
            if source.remaining() > 0 && !source.out.is_full() {
                return 0;
            }
        }
        for sink in &self.sinks {
            if !sink.input.is_empty() {
                return 0;
            }
        }
        (wake - now).min(limit)
    }

    /// Jumps the system `cycles` cycles forward, bulk-applying each
    /// component's per-cycle bookkeeping (stall/idle counters, local
    /// clocks, per-cycle stall trace events) exactly as if
    /// [`System::step`] had been called `cycles` times.
    ///
    /// Only exact for spans within [`System::idle_horizon`] — counters,
    /// traces and snapshots then stay bit-identical to the
    /// cycle-by-cycle run. Halted PEs are not asked to skip: their
    /// `step` is already a no-op.
    pub fn skip_cycles(&mut self, cycles: u64) {
        for pe in &mut self.pes {
            if !pe.is_halted() {
                pe.skip_cycles(cycles);
            }
        }
        for port in &mut self.read_ports {
            port.skip_cycles(cycles);
        }
        self.cycle += cycles;
        self.ff_stats.skipped_cycles += cycles;
    }

    /// Runs until `condition` holds (checked after each cycle) or
    /// `max_cycles` elapse.
    ///
    /// With fast-forwarding enabled (see [`System::fast_forward`]),
    /// provably inert spans are skipped in bulk via
    /// [`System::skip_cycles`]; the run is bit-identical to the
    /// cycle-by-cycle one as long as `condition` depends only on system
    /// *state* (queues, counters, halt flags — all frozen across a
    /// skipped span), not on the cycle number itself. Callers with
    /// cycle-triggered conditions should disable fast-forwarding or
    /// bound `max_cycles` instead.
    pub fn run_until<F>(&mut self, mut condition: F, max_cycles: u64) -> StopReason
    where
        F: FnMut(&System<P>) -> bool,
    {
        let end = self.cycle.saturating_add(max_cycles);
        while self.cycle < end {
            // Probing the idle horizon costs a scan over every link and
            // component, so only pay for it after a cycle that retired
            // nothing — a retiring fabric is self-evidently not inert,
            // and skipping the probe there makes fast-forwarding free
            // on compute-dense runs.
            let retired_before = self.fast_forward.then(|| self.total_retired());
            self.step();
            if condition(self) {
                return StopReason::Condition;
            }
            if retired_before == Some(self.total_retired()) {
                // Exponential backoff after consecutive unproductive
                // probes (see `probe_cooldown`): suppressed probes just
                // step normally, which is bit-identical.
                if self.probe_cooldown > 0 {
                    self.probe_cooldown -= 1;
                    self.ff_stats.suppressed_probes += 1;
                    continue;
                }
                let skip = self.idle_horizon(end - self.cycle);
                if skip >= PROBE_YIELD_FLOOR {
                    // A high-yield probe earns eager probing.
                    self.probe_misses = 0;
                    self.probe_cooldown = 0;
                } else {
                    // A miss — or a hit that skipped less than a
                    // full-fabric scan is worth — delays the next probe.
                    self.probe_misses = self.probe_misses.saturating_add(1);
                    self.probe_cooldown = 1u64 << self.probe_misses.min(6);
                }
                if skip > 0 {
                    self.skip_cycles(skip);
                    if condition(self) {
                        return StopReason::Condition;
                    }
                }
            }
        }
        StopReason::CycleLimit
    }

    /// Runs until every PE halts or `max_cycles` elapse.
    pub fn run(&mut self, max_cycles: u64) -> StopReason {
        self.run_until(|sys| sys.all_halted(), max_cycles)
    }

    /// Total tokens buffered anywhere the system can see: PE input and
    /// output queues (as exposed by
    /// [`ProcessingElement::num_input_queues`] /
    /// [`ProcessingElement::num_output_queues`]), memory-port queues
    /// and in-flight loads, and host stream endpoints. A watchdog uses
    /// this to distinguish a blocked-but-loaded fabric (deadlock) from
    /// a fully quiescent one.
    pub fn buffered_tokens(&mut self) -> u64 {
        let mut total: u64 = 0;
        for pe in &mut self.pes {
            for i in 0..pe.num_input_queues() {
                total += pe.input_queue_mut(i).occupancy() as u64;
            }
            for i in 0..pe.num_output_queues() {
                total += pe.output_queue_mut(i).occupancy() as u64;
            }
        }
        for port in &self.read_ports {
            total += (port.addr_in.occupancy() + port.data_out.occupancy() + port.in_flight_len())
                as u64;
        }
        for port in &self.write_ports {
            total += (port.addr_in.occupancy() + port.data_in.occupancy()) as u64;
        }
        for port in &self.seq_write_ports {
            total += port.data_in.occupancy() as u64;
        }
        for source in &self.sources {
            total += source.out.occupancy() as u64;
        }
        for sink in &self.sinks {
            total += sink.input.occupancy() as u64;
        }
        total
    }

    /// Total instructions retired across all PEs (see
    /// [`ProcessingElement::retired_instructions`]).
    pub fn total_retired(&self) -> u64 {
        self.pes.iter().map(|p| p.retired_instructions()).sum()
    }
}

impl<P: ProcessingElement + Snapshotable> System<P> {
    /// Captures the complete architectural state of the system: cycle
    /// count, memory contents, every port/stream state, and each PE's
    /// state via [`Snapshotable`].
    ///
    /// The fabric tracer (if any) is deliberately *not* captured:
    /// trace rings are observability state, not architectural state,
    /// and a restored run re-arms tracing explicitly.
    pub fn save_state(&self) -> SystemState {
        SystemState {
            cycle: self.cycle,
            memory: self.memory.words().to_vec(),
            pes: self.pes.iter().map(|p| p.save_state()).collect(),
            read_ports: self.read_ports.iter().map(|p| p.snapshot()).collect(),
            write_ports: self.write_ports.iter().map(|p| p.snapshot()).collect(),
            seq_write_ports: self.seq_write_ports.iter().map(|p| p.snapshot()).collect(),
            sources: self.sources.iter().map(|s| s.snapshot()).collect(),
            sinks: self.sinks.iter().map(|s| s.snapshot()).collect(),
        }
    }

    /// Restores a snapshot taken from a system with identical topology
    /// (same PE/port/stream counts and shapes, built by the same
    /// wiring code).
    ///
    /// # Errors
    ///
    /// Fails when any component count or shape differs from the
    /// snapshot.
    pub fn restore_state(&mut self, state: &SystemState) -> Result<(), RestoreError> {
        let check = |what, expected: usize, found: usize| {
            if expected == found {
                Ok(())
            } else {
                Err(RestoreError::shape(what, expected, found))
            }
        };
        check("PE count", self.pes.len(), state.pes.len())?;
        check("memory size", self.memory.len(), state.memory.len())?;
        check(
            "read-port count",
            self.read_ports.len(),
            state.read_ports.len(),
        )?;
        check(
            "write-port count",
            self.write_ports.len(),
            state.write_ports.len(),
        )?;
        check(
            "seq-write-port count",
            self.seq_write_ports.len(),
            state.seq_write_ports.len(),
        )?;
        check("source count", self.sources.len(), state.sources.len())?;
        check("sink count", self.sinks.len(), state.sinks.len())?;
        for (pe, s) in self.pes.iter_mut().zip(&state.pes) {
            pe.restore_state(s)?;
        }
        self.memory = Memory::from_words(state.memory.clone());
        for (port, s) in self.read_ports.iter_mut().zip(&state.read_ports) {
            port.restore(s)?;
        }
        for (port, s) in self.write_ports.iter_mut().zip(&state.write_ports) {
            port.restore(s)?;
        }
        for (port, s) in self.seq_write_ports.iter_mut().zip(&state.seq_write_ports) {
            port.restore(s)?;
        }
        for (source, s) in self.sources.iter_mut().zip(&state.sources) {
            source.restore(s)?;
        }
        for (sink, s) in self.sinks.iter_mut().zip(&state.sinks) {
            sink.restore(s)?;
        }
        self.cycle = state.cycle;
        Ok(())
    }
}

/// Serializable snapshot of a whole [`System`]: everything needed to
/// resume a run bit-identically on an identically-wired system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemState {
    /// The system cycle count.
    pub cycle: u64,
    /// The data memory contents.
    pub memory: Vec<Word>,
    /// Per-PE state, as produced by [`Snapshotable::save_state`].
    pub pes: Vec<Value>,
    /// Read-port states.
    pub read_ports: Vec<ReadPortState>,
    /// Write-port states.
    pub write_ports: Vec<WritePortState>,
    /// Sequential-write-port states.
    pub seq_write_ports: Vec<SeqWritePortState>,
    /// Stream-source states.
    pub sources: Vec<StreamSourceState>,
    /// Stream-sink states.
    pub sinks: Vec<StreamSinkState>,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopReason::Condition => f.write_str("condition met"),
            StopReason::CycleLimit => f.write_str("cycle limit reached"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::Token;

    #[test]
    fn toggle_accepts_the_documented_spellings() {
        for on in ["1", "true", "on", "yes", "TRUE", " On ", "YES"] {
            assert_eq!(parse_toggle("TIA_FAST_FORWARD", on), Ok(true), "{on}");
        }
        for off in ["0", "false", "off", "no", "FALSE", " Off ", "NO"] {
            assert_eq!(parse_toggle("TIA_FAST_FORWARD", off), Ok(false), "{off}");
        }
    }

    #[test]
    fn toggle_rejects_empty_and_garbage_loudly() {
        for bad in ["", " ", "2", "-1", "enabled", "tru", "offf", "０"] {
            let err = parse_toggle("TIA_FAST_FORWARD", bad)
                .expect_err("malformed toggles must not default silently");
            assert!(err.contains("TIA_FAST_FORWARD"), "{bad:?}: {err}");
            assert!(err.contains("expected one of"), "{bad:?}: {err}");
        }
    }

    /// A trivial PE that copies input 0 to output 0 each cycle.
    #[derive(Debug)]
    struct CopyPe {
        input: TaggedQueue,
        output: TaggedQueue,
        copied: u64,
        halt_after: u64,
    }

    impl CopyPe {
        fn new(halt_after: u64) -> Self {
            CopyPe {
                input: TaggedQueue::new(2),
                output: TaggedQueue::new(2),
                copied: 0,
                halt_after,
            }
        }
    }

    impl ProcessingElement for CopyPe {
        fn step(&mut self) {
            if !self.input.is_empty() && !self.output.is_full() {
                let t = self.input.pop().expect("checked");
                let pushed = self.output.push(t);
                debug_assert!(pushed);
                self.copied += 1;
            }
        }

        fn input_queue_mut(&mut self, index: usize) -> &mut TaggedQueue {
            assert_eq!(index, 0);
            &mut self.input
        }

        fn output_queue_mut(&mut self, index: usize) -> &mut TaggedQueue {
            assert_eq!(index, 0);
            &mut self.output
        }

        fn is_halted(&self) -> bool {
            self.copied >= self.halt_after
        }
    }

    fn chain(n_items: u32) -> System<CopyPe> {
        let mut sys = System::new(Memory::new(0));
        let pe = sys.add_pe(CopyPe::new(n_items as u64));
        let tokens: Vec<Token> = (0..n_items).map(Token::data).collect();
        let src = sys.add_source(StreamSource::new(2, tokens));
        let sink = sys.add_sink(StreamSink::new(2));
        sys.connect(
            OutputRef::Source { source: src },
            InputRef::Pe { pe, queue: 0 },
        )
        .unwrap();
        sys.connect(OutputRef::Pe { pe, queue: 0 }, InputRef::Sink { sink })
            .unwrap();
        sys
    }

    #[test]
    fn source_pe_sink_pipeline_delivers_everything_in_order() {
        let mut sys = chain(10);
        let reason = sys.run(1_000);
        assert_eq!(reason, StopReason::Condition);
        // Let the tail drain.
        for _ in 0..10 {
            sys.step();
        }
        assert_eq!(sys.sink(0).words(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn duplicate_endpoints_are_rejected() {
        let mut sys = chain(1);
        let err = sys
            .connect(OutputRef::Source { source: 0 }, InputRef::Sink { sink: 0 })
            .unwrap_err();
        assert!(err.to_string().contains("already connected"));
    }

    #[test]
    fn dangling_endpoints_are_rejected() {
        let mut sys: System<CopyPe> = System::new(Memory::new(0));
        assert!(sys
            .connect(
                OutputRef::Pe { pe: 0, queue: 0 },
                InputRef::Sink { sink: 0 }
            )
            .is_err());
    }

    #[test]
    fn cycle_limit_stops_a_stuck_system() {
        // A source with no consumer for the PE output: the PE's output
        // queue fills and everything backs up.
        let mut sys = System::new(Memory::new(0));
        let pe = sys.add_pe(CopyPe::new(u64::MAX));
        let tokens: Vec<Token> = (0..100).map(Token::data).collect();
        let src = sys.add_source(StreamSource::new(2, tokens));
        sys.connect(
            OutputRef::Source { source: src },
            InputRef::Pe { pe, queue: 0 },
        )
        .unwrap();
        assert_eq!(sys.run(50), StopReason::CycleLimit);
        assert_eq!(sys.cycle(), 50);
        // Exactly capacity(out)=2 copies happened, then backpressure.
        assert_eq!(sys.pe(0).copied, 2);
    }

    #[test]
    fn fabric_tracing_records_pe_channel_traffic() {
        let mut sys = chain(4);
        sys.enable_tracing();
        sys.run(1_000);
        let tracer = sys.take_tracer().expect("tracing was enabled");
        let events: Vec<_> = tracer.events().copied().collect();
        // Source→PE transfers are enqueues into PE 0's input; PE→sink
        // transfers are dequeues from PE 0's output.
        assert!(events.iter().any(|e| matches!(
            e.kind,
            tia_trace::EventKind::QueueOp {
                dir: tia_trace::QueueDir::Enqueue,
                ..
            }
        )));
        assert!(events.iter().any(|e| matches!(
            e.kind,
            tia_trace::EventKind::QueueOp {
                dir: tia_trace::QueueDir::Dequeue,
                ..
            }
        )));
        assert!(sys.take_tracer().is_none(), "taking the tracer stops it");
    }

    #[test]
    fn memory_roundtrip_through_ports() {
        // source(addresses) -> read port -> sink
        let mut sys: System<CopyPe> = System::new(Memory::from_words(vec![7, 8, 9]));
        let rp = sys.add_read_port(ReadPort::new(2, 4));
        let addrs: Vec<Token> = (0..3).map(Token::data).collect();
        let src = sys.add_source(StreamSource::new(2, addrs));
        let sink = sys.add_sink(StreamSink::new(2));
        sys.connect(
            OutputRef::Source { source: src },
            InputRef::ReadAddr { port: rp },
        )
        .unwrap();
        sys.connect(OutputRef::ReadData { port: rp }, InputRef::Sink { sink })
            .unwrap();
        let reason = sys.run_until(|s| s.sink(0).collected().len() == 3, 100);
        assert_eq!(reason, StopReason::Condition);
        assert_eq!(sys.sink(0).words(), vec![7, 8, 9]);
    }

    #[test]
    fn write_port_commits_paired_stores() {
        let mut sys: System<CopyPe> = System::new(Memory::new(4));
        let wp = sys.add_write_port(WritePort::new(2));
        let addr_src = sys.add_source(StreamSource::new(2, vec![Token::data(1), Token::data(2)]));
        let data_src = sys.add_source(StreamSource::new(2, vec![Token::data(11), Token::data(22)]));
        sys.connect(
            OutputRef::Source { source: addr_src },
            InputRef::WriteAddr { port: wp },
        )
        .unwrap();
        sys.connect(
            OutputRef::Source { source: data_src },
            InputRef::WriteData { port: wp },
        )
        .unwrap();
        for _ in 0..20 {
            sys.step();
        }
        assert_eq!(sys.memory().read(1), 11);
        assert_eq!(sys.memory().read(2), 22);
    }

    /// A PE that does nothing until a programmed wake cycle, then
    /// halts — and records how many cycles were bulk-skipped, so tests
    /// can verify the fast-forward accounting contract.
    #[derive(Debug)]
    struct SleepyPe {
        queue: TaggedQueue,
        wake_at: Option<u64>,
        stepped: u64,
        skipped: u64,
        halted: bool,
    }

    impl SleepyPe {
        fn new(wake_at: Option<u64>) -> Self {
            SleepyPe {
                queue: TaggedQueue::new(2),
                wake_at,
                stepped: 0,
                skipped: 0,
                halted: false,
            }
        }
    }

    impl ProcessingElement for SleepyPe {
        fn step(&mut self) {
            self.stepped += 1;
            if let Some(wake) = self.wake_at {
                // `stepped` counts completed cycles, so after the step
                // finishing cycle `wake` the PE has done its work.
                if self.stepped > wake {
                    self.halted = true;
                }
            }
        }

        fn input_queue_mut(&mut self, index: usize) -> &mut TaggedQueue {
            assert_eq!(index, 0);
            &mut self.queue
        }

        fn output_queue_mut(&mut self, index: usize) -> &mut TaggedQueue {
            assert_eq!(index, 0);
            &mut self.queue
        }

        fn is_halted(&self) -> bool {
            self.halted
        }

        fn next_event_cycle(&self, now: u64) -> Option<u64> {
            match self.wake_at {
                None => None,
                Some(wake) if wake > now => Some(wake),
                Some(_) => Some(now),
            }
        }

        fn skip_cycles(&mut self, cycles: u64) {
            self.stepped += cycles;
            self.skipped += cycles;
        }
    }

    #[test]
    fn fast_forward_jumps_an_inert_system_to_the_limit() {
        let mut sys = System::new(Memory::new(0));
        sys.add_pe(SleepyPe::new(None));
        assert!(sys.fast_forward(), "fast-forward defaults on");
        assert_eq!(sys.run(1_000_000), StopReason::CycleLimit);
        assert_eq!(sys.cycle(), 1_000_000);
        // One real step, then a single bulk skip to the limit.
        assert_eq!(sys.pe(0).stepped, 1_000_000);
        assert_eq!(sys.pe(0).skipped, 999_999);
    }

    #[test]
    fn fast_forward_lands_exactly_on_the_wake_cycle() {
        let mut sys = System::new(Memory::new(0));
        sys.add_pe(SleepyPe::new(Some(500)));
        assert_eq!(sys.run(1_000_000), StopReason::Condition);
        // The PE halts on the step that completes cycle 501: cycles
        // 2..=500 were skippable, 501 had to be simulated.
        assert_eq!(sys.cycle(), 501);
        assert_eq!(sys.pe(0).stepped, 501);
        assert_eq!(sys.pe(0).skipped, 499);
    }

    #[test]
    fn disabling_fast_forward_steps_every_cycle() {
        let mut sys = System::new(Memory::new(0));
        sys.add_pe(SleepyPe::new(Some(500)));
        sys.set_fast_forward(false);
        assert_eq!(sys.run(1_000_000), StopReason::Condition);
        assert_eq!(sys.cycle(), 501);
        assert_eq!(sys.pe(0).stepped, 501);
        assert_eq!(sys.pe(0).skipped, 0);
    }

    #[test]
    fn pending_link_transfers_inhibit_skipping() {
        // An inert PE with a token parked in its output queue and a
        // sink attached: the link can transfer, so the horizon is 0
        // until the fabric drains it.
        let mut sys = System::new(Memory::new(0));
        let pe = sys.add_pe(SleepyPe::new(None));
        let sink = sys.add_sink(StreamSink::new(2));
        sys.connect(OutputRef::Pe { pe, queue: 0 }, InputRef::Sink { sink })
            .unwrap();
        assert!(sys.pe_mut(0).output_queue_mut(0).push(Token::data(9)));
        assert_eq!(sys.idle_horizon(100), 0);
        // One step moves the token over the link and the sink drains
        // it in the same cycle (sinks run after link transfers).
        sys.step();
        assert_eq!(sys.sink(0).words(), vec![9]);
        // Now truly inert.
        assert_eq!(sys.idle_horizon(100), 100);
    }

    #[test]
    fn in_flight_loads_bound_the_horizon() {
        let mut sys: System<SleepyPe> = System::new(Memory::from_words(vec![7, 8, 9]));
        let rp = sys.add_read_port(ReadPort::new(2, 10));
        let sink = sys.add_sink(StreamSink::new(2));
        sys.connect(OutputRef::ReadData { port: rp }, InputRef::Sink { sink })
            .unwrap();
        assert!(sys.read_ports[rp].addr_in.push(Token::data(2)));
        // Step once: the port launches the load (latency 10).
        sys.step();
        let reason = sys.run_until(|s| s.sink(0).collected().len() == 1, 100);
        assert_eq!(reason, StopReason::Condition);
        assert_eq!(sys.sink(0).words(), vec![9]);
    }

    #[test]
    fn fast_forwarded_run_matches_the_stepped_run_exactly() {
        // The memory round-trip pipeline, fast-forwarded vs stepped.
        let build = || {
            let mut sys: System<CopyPe> = System::new(Memory::from_words(vec![7, 8, 9]));
            let rp = sys.add_read_port(ReadPort::new(2, 6));
            let addrs: Vec<Token> = (0..3).map(Token::data).collect();
            let src = sys.add_source(StreamSource::new(2, addrs));
            let sink = sys.add_sink(StreamSink::new(2));
            sys.connect(
                OutputRef::Source { source: src },
                InputRef::ReadAddr { port: rp },
            )
            .unwrap();
            sys.connect(OutputRef::ReadData { port: rp }, InputRef::Sink { sink })
                .unwrap();
            sys
        };
        let mut fast = build();
        fast.set_fast_forward(true);
        let mut slow = build();
        slow.set_fast_forward(false);
        let reason_fast = fast.run_until(|s| s.sink(0).collected().len() == 3, 1_000);
        let reason_slow = slow.run_until(|s| s.sink(0).collected().len() == 3, 1_000);
        assert_eq!(reason_fast, reason_slow);
        assert_eq!(fast.cycle(), slow.cycle());
        assert_eq!(fast.sink(0).words(), slow.sink(0).words());
    }
}
