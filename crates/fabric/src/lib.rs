//! # `tia-fabric` — the spatial substrate
//!
//! The interconnect layer of the triggered-PE reproduction: tagged
//! register queues ([`TaggedQueue`]), point-to-point channels, on-chip
//! memory with read/write ports at channel endpoints ([`ReadPort`],
//! [`WritePort`], default 4-cycle load latency as in the paper's test
//! system), and host stream endpoints ([`StreamSource`],
//! [`StreamSink`]).
//!
//! Processing elements — whether the functional model of `tia-sim` or
//! the cycle-level pipelines of `tia-core` — plug into a [`System`]
//! through the [`ProcessingElement`] trait, so the same spatial
//! workload wiring runs on any PE model.
//!
//! # Examples
//!
//! Stream three addresses through a read port and collect the loads:
//!
//! ```
//! use tia_fabric::{
//!     InputRef, Memory, OutputRef, ProcessingElement, ReadPort, StreamSink,
//!     StreamSource, System, TaggedQueue, Token,
//! };
//!
//! // A system can be PE-free; `NullPe` below is never instantiated.
//! #[derive(Debug)]
//! enum NullPe {}
//! impl ProcessingElement for NullPe {
//!     fn step(&mut self) { match *self {} }
//!     fn input_queue_mut(&mut self, _: usize) -> &mut TaggedQueue { match *self {} }
//!     fn output_queue_mut(&mut self, _: usize) -> &mut TaggedQueue { match *self {} }
//!     fn is_halted(&self) -> bool { match *self {} }
//! }
//!
//! let mut sys: System<NullPe> = System::new(Memory::from_words(vec![10, 20, 30]));
//! let port = sys.add_read_port(ReadPort::new(2, 4));
//! let src = sys.add_source(StreamSource::new(2, vec![
//!     Token::data(0), Token::data(1), Token::data(2),
//! ]));
//! let sink = sys.add_sink(StreamSink::new(2));
//! sys.connect(OutputRef::Source { source: src }, InputRef::ReadAddr { port })?;
//! sys.connect(OutputRef::ReadData { port }, InputRef::Sink { sink })?;
//! sys.run_until(|s| s.sink(0).collected().len() == 3, 1_000);
//! assert_eq!(sys.sink(0).words(), vec![10, 20, 30]);
//! # Ok::<(), tia_isa::IsaError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod memory;
pub mod mesh;
pub mod queue;
pub mod stream;
pub mod system;

pub use memory::{
    addr_token, InFlightLoad, Memory, ReadPort, ReadPortState, SeqWritePortState,
    SequentialWritePort, WritePort, WritePortState, DEFAULT_LOAD_LATENCY,
};
pub use mesh::{Coord, Direction, Mesh, MeshBuilder};
pub use queue::{QueueState, QueueStats, RestoreError, TaggedQueue, Token};
pub use stream::{StreamSink, StreamSinkState, StreamSource, StreamSourceState};
pub use system::{
    fast_forward_from_env, parse_toggle, FastForwardStats, InputRef, Link, OutputRef,
    ProcessingElement, Snapshotable, StopReason, System, SystemState,
};
