//! Tagged register queues — the communication primitive of the fabric.
//!
//! "Each trigger-controlled PE is connected to neighboring PEs by a set
//! of incoming and outgoing tagged data queues over an interconnect
//! fabric. Tags encode programmable semantic information that
//! accompanies the data communicated over these queues" (§2.1).

use std::collections::VecDeque;
use std::fmt;

use serde::{Deserialize, Serialize};
use tia_isa::{Tag, Word};

/// One tagged data word travelling through the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Token {
    /// The semantic tag.
    pub tag: Tag,
    /// The data word.
    pub data: Word,
}

impl Token {
    /// Creates a token.
    pub fn new(tag: Tag, data: Word) -> Self {
        Token { tag, data }
    }

    /// A token carrying `data` with [`Tag::ZERO`], the conventional
    /// plain-data tag.
    pub fn data(data: Word) -> Self {
        Token {
            tag: Tag::ZERO,
            data,
        }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{:#x}", self.tag, self.data)
    }
}

/// A bounded FIFO of [`Token`]s: one register queue of the spatial
/// fabric.
///
/// Beyond plain FIFO operations the queue exposes what the paper's
/// microarchitecture needs: occupancy for effective-status accounting
/// (§5.3) and indexed peeking at the "head" *and* "neck", since with a
/// dequeue in flight "the first N tags on the input queue must be
/// exposed, which for our pipelines is just the head and neck".
///
/// # Examples
///
/// ```
/// use tia_fabric::{TaggedQueue, Token};
///
/// let mut q = TaggedQueue::new(2);
/// assert!(q.push(Token::data(7)));
/// assert!(q.push(Token::data(8)));
/// assert!(!q.push(Token::data(9))); // full
/// assert_eq!(q.peek_at(1).unwrap().data, 8); // the "neck"
/// assert_eq!(q.pop().unwrap().data, 7);
/// ```
#[derive(Debug, Clone)]
pub struct TaggedQueue {
    tokens: VecDeque<Token>,
    capacity: usize,
    stats: QueueStats,
    version: u64,
}

/// Lifetime traffic statistics for one queue. Cheap enough to keep
/// always-on; the trace/metrics layer reads them at end of run.
///
/// The accounting invariant the metrics layer relies on is
/// `pushes - pops - cleared == occupancy` at every point in time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(default)]
pub struct QueueStats {
    /// Tokens accepted by [`TaggedQueue::push`].
    pub pushes: u64,
    /// Tokens removed by [`TaggedQueue::pop`].
    pub pops: u64,
    /// Pushes rejected because the queue was full.
    pub rejected: u64,
    /// Tokens discarded by [`TaggedQueue::clear`] (flushes), so that
    /// cleared tokens don't silently break the occupancy invariant.
    pub cleared: u64,
    /// Highest occupancy ever reached.
    pub high_water: usize,
}

/// Serializable snapshot of one queue: contents, capacity, lifetime
/// stats and the modification counter. Produced by
/// [`TaggedQueue::snapshot`] and consumed by [`TaggedQueue::restore`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueState {
    /// Queued tokens, head first.
    pub tokens: Vec<Token>,
    /// Configured capacity.
    pub capacity: usize,
    /// Lifetime traffic statistics.
    pub stats: QueueStats,
    /// Modification counter (see [`TaggedQueue::version`]).
    pub version: u64,
}

/// Equality compares contents and capacity only — two queues that
/// arrived at the same state through different traffic histories are
/// equal, which is what the architectural-equivalence tests compare.
impl PartialEq for TaggedQueue {
    fn eq(&self, other: &Self) -> bool {
        self.tokens == other.tokens && self.capacity == other.capacity
    }
}

impl Eq for TaggedQueue {}

impl TaggedQueue {
    /// Creates an empty queue with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero; a zero-capacity queue can never
    /// carry data.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        TaggedQueue {
            tokens: VecDeque::with_capacity(capacity),
            capacity,
            stats: QueueStats::default(),
            version: 0,
        }
    }

    /// Lifetime traffic statistics.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// The cycle-stack profiler's fabric-free view of this queue's
    /// pressure: current fill, lifetime traffic, and backpressure
    /// evidence (see [`tia_trace::ChannelPressure`]).
    pub fn pressure(&self) -> tia_trace::ChannelPressure {
        tia_trace::ChannelPressure {
            occupancy: self.occupancy(),
            capacity: self.capacity(),
            pushes: self.stats.pushes,
            pops: self.stats.pops,
            rejected: self.stats.rejected,
            high_water: self.stats.high_water,
        }
    }

    /// A monotonically increasing modification counter, bumped by
    /// every successful [`TaggedQueue::push`], [`TaggedQueue::pop`]
    /// and [`TaggedQueue::clear`]. Schedulers use it to detect that a
    /// queue's contents changed between cycles (e.g. a fabric push
    /// landing between two trigger evaluations) without re-reading the
    /// contents.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy in tokens.
    pub fn occupancy(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the queue holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Whether the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.tokens.len() == self.capacity
    }

    /// The head token, if any.
    pub fn peek(&self) -> Option<Token> {
        self.tokens.front().copied()
    }

    /// The token at depth `n` (0 = head, 1 = neck, ...), if present.
    pub fn peek_at(&self, n: usize) -> Option<Token> {
        self.tokens.get(n).copied()
    }

    /// Enqueues a token; returns whether it was accepted (false when
    /// full).
    #[must_use = "a rejected push means the queue was full"]
    pub fn push(&mut self, token: Token) -> bool {
        if self.is_full() {
            self.stats.rejected += 1;
            false
        } else {
            self.tokens.push_back(token);
            self.stats.pushes += 1;
            self.stats.high_water = self.stats.high_water.max(self.tokens.len());
            self.version += 1;
            true
        }
    }

    /// Dequeues the head token.
    pub fn pop(&mut self) -> Option<Token> {
        let token = self.tokens.pop_front();
        if token.is_some() {
            self.stats.pops += 1;
            self.version += 1;
        }
        token
    }

    /// Removes every token, accounting them as flushed in
    /// [`QueueStats::cleared`] so the `pushes - pops - cleared ==
    /// occupancy` invariant survives the flush.
    pub fn clear(&mut self) {
        if !self.tokens.is_empty() {
            self.stats.cleared += self.tokens.len() as u64;
            self.version += 1;
        }
        self.tokens.clear();
    }

    /// Iterates over queued tokens from head to tail.
    pub fn iter(&self) -> impl Iterator<Item = &Token> {
        self.tokens.iter()
    }

    /// Captures the complete queue state (contents, stats, version).
    pub fn snapshot(&self) -> QueueState {
        QueueState {
            tokens: self.tokens.iter().copied().collect(),
            capacity: self.capacity,
            stats: self.stats,
            version: self.version,
        }
    }

    /// Restores a snapshot taken from a queue of the same capacity.
    ///
    /// # Errors
    ///
    /// Fails when the snapshot's capacity differs from this queue's
    /// (snapshots restore state, never topology) or the snapshot holds
    /// more tokens than fit.
    pub fn restore(&mut self, state: &QueueState) -> Result<(), RestoreError> {
        if state.capacity != self.capacity {
            return Err(RestoreError::shape(
                "queue capacity",
                self.capacity,
                state.capacity,
            ));
        }
        if state.tokens.len() > state.capacity {
            return Err(RestoreError::invalid("queue holds more tokens than fit"));
        }
        self.tokens = state.tokens.iter().copied().collect();
        self.stats = state.stats;
        self.version = state.version;
        Ok(())
    }
}

/// Why a snapshot could not be restored into a live component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The snapshot's shape (a capacity, count, or length) does not
    /// match the component it is being restored into.
    Shape {
        /// What mismatched.
        what: &'static str,
        /// The live component's value.
        expected: usize,
        /// The snapshot's value.
        found: usize,
    },
    /// The snapshot is internally inconsistent.
    Invalid {
        /// What is wrong.
        what: &'static str,
    },
    /// The serialized value did not parse as the expected state type.
    Parse {
        /// The deserializer's message.
        message: String,
    },
}

impl RestoreError {
    /// Shape mismatch between snapshot and live component.
    pub fn shape(what: &'static str, expected: usize, found: usize) -> Self {
        RestoreError::Shape {
            what,
            expected,
            found,
        }
    }

    /// Internally inconsistent snapshot.
    pub fn invalid(what: &'static str) -> Self {
        RestoreError::Invalid { what }
    }
}

impl From<serde::DeError> for RestoreError {
    fn from(err: serde::DeError) -> Self {
        RestoreError::Parse {
            message: err.to_string(),
        }
    }
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::Shape {
                what,
                expected,
                found,
            } => write!(
                f,
                "snapshot shape mismatch: {what} is {found} in the snapshot \
                 but {expected} in the target"
            ),
            RestoreError::Invalid { what } => write!(f, "invalid snapshot: {what}"),
            RestoreError::Parse { message } => write!(f, "snapshot does not parse: {message}"),
        }
    }
}

impl std::error::Error for RestoreError {}

#[cfg(test)]
mod tests {
    use super::*;
    use tia_isa::{Params, Tag};

    #[test]
    fn fifo_order_is_preserved() {
        let mut q = TaggedQueue::new(4);
        for i in 0..4 {
            assert!(q.push(Token::data(i)));
        }
        for i in 0..4 {
            assert_eq!(q.pop().unwrap().data, i);
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn push_to_full_queue_is_rejected_without_loss() {
        let mut q = TaggedQueue::new(1);
        assert!(q.push(Token::data(1)));
        assert!(!q.push(Token::data(2)));
        assert_eq!(q.occupancy(), 1);
        assert_eq!(q.peek().unwrap().data, 1);
    }

    #[test]
    fn head_and_neck_peeking() {
        let params = Params::default();
        let mut q = TaggedQueue::new(3);
        assert!(q.push(Token::new(Tag::new(1, &params).unwrap(), 10)));
        assert!(q.push(Token::new(Tag::new(2, &params).unwrap(), 20)));
        assert_eq!(q.peek_at(0).unwrap().tag.value(), 1);
        assert_eq!(q.peek_at(1).unwrap().tag.value(), 2);
        assert_eq!(q.peek_at(2), None);
    }

    #[test]
    fn occupancy_tracks_operations() {
        let mut q = TaggedQueue::new(2);
        assert_eq!(q.occupancy(), 0);
        assert!(q.is_empty());
        let _ = q.push(Token::data(1));
        assert_eq!(q.occupancy(), 1);
        assert!(!q.is_empty() && !q.is_full());
        let _ = q.push(Token::data(2));
        assert!(q.is_full());
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = TaggedQueue::new(0);
    }

    #[test]
    fn stats_track_traffic_and_high_water() {
        let mut q = TaggedQueue::new(2);
        assert!(q.push(Token::data(1)));
        assert!(q.push(Token::data(2)));
        assert!(!q.push(Token::data(3)));
        assert!(q.pop().is_some());
        assert!(q.pop().is_some());
        assert!(q.pop().is_none());
        let stats = q.stats();
        assert_eq!(stats.pushes, 2);
        assert_eq!(stats.pops, 2);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.high_water, 2);
    }

    #[test]
    fn cleared_tokens_are_accounted() {
        let invariant = |q: &TaggedQueue| {
            let s = q.stats();
            assert_eq!(
                s.pushes - s.pops - s.cleared,
                q.occupancy() as u64,
                "pushes - pops - cleared must equal occupancy"
            );
        };
        let mut q = TaggedQueue::new(4);
        invariant(&q);
        for i in 0..3 {
            assert!(q.push(Token::data(i)));
            invariant(&q);
        }
        assert!(q.pop().is_some());
        invariant(&q);
        q.clear();
        invariant(&q);
        assert_eq!(q.stats().cleared, 2);
        // Clearing an empty queue flushes nothing.
        q.clear();
        invariant(&q);
        assert_eq!(q.stats().cleared, 2);
        // The queue stays usable after a flush.
        assert!(q.push(Token::data(9)));
        invariant(&q);
        assert!(q.pop().is_some());
        q.clear();
        invariant(&q);
        assert_eq!(q.stats().cleared, 2);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut q = TaggedQueue::new(3);
        assert!(q.push(Token::data(1)));
        assert!(q.push(Token::data(2)));
        assert!(q.pop().is_some());
        q.clear();
        assert!(q.push(Token::data(7)));

        let state = q.snapshot();
        let json = serde_json::to_string(&state.to_value()).expect("serializes");
        let parsed = serde_json::from_str(&json).expect("parses");
        let state2 = QueueState::from_value(&parsed).expect("deserializes");
        assert_eq!(state, state2);

        let mut fresh = TaggedQueue::new(3);
        fresh.restore(&state2).expect("restores");
        assert_eq!(fresh.snapshot(), state);
        assert_eq!(fresh.peek().unwrap().data, 7);
        assert_eq!(fresh.version(), q.version());
        assert_eq!(fresh.stats(), q.stats());
    }

    #[test]
    fn restore_rejects_capacity_mismatch() {
        let q = TaggedQueue::new(3);
        let state = q.snapshot();
        let mut other = TaggedQueue::new(2);
        assert!(matches!(
            other.restore(&state),
            Err(RestoreError::Shape { .. })
        ));
    }

    #[test]
    fn equality_ignores_traffic_history() {
        let mut a = TaggedQueue::new(2);
        let b = TaggedQueue::new(2);
        assert!(a.push(Token::data(1)));
        let _ = a.pop();
        assert_eq!(a, b, "same contents, different histories");
    }
}
