//! Tagged register queues — the communication primitive of the fabric.
//!
//! "Each trigger-controlled PE is connected to neighboring PEs by a set
//! of incoming and outgoing tagged data queues over an interconnect
//! fabric. Tags encode programmable semantic information that
//! accompanies the data communicated over these queues" (§2.1).

use std::collections::VecDeque;
use std::fmt;

use tia_isa::{Tag, Word};

/// One tagged data word travelling through the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token {
    /// The semantic tag.
    pub tag: Tag,
    /// The data word.
    pub data: Word,
}

impl Token {
    /// Creates a token.
    pub fn new(tag: Tag, data: Word) -> Self {
        Token { tag, data }
    }

    /// A token carrying `data` with [`Tag::ZERO`], the conventional
    /// plain-data tag.
    pub fn data(data: Word) -> Self {
        Token {
            tag: Tag::ZERO,
            data,
        }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{:#x}", self.tag, self.data)
    }
}

/// A bounded FIFO of [`Token`]s: one register queue of the spatial
/// fabric.
///
/// Beyond plain FIFO operations the queue exposes what the paper's
/// microarchitecture needs: occupancy for effective-status accounting
/// (§5.3) and indexed peeking at the "head" *and* "neck", since with a
/// dequeue in flight "the first N tags on the input queue must be
/// exposed, which for our pipelines is just the head and neck".
///
/// # Examples
///
/// ```
/// use tia_fabric::{TaggedQueue, Token};
///
/// let mut q = TaggedQueue::new(2);
/// assert!(q.push(Token::data(7)));
/// assert!(q.push(Token::data(8)));
/// assert!(!q.push(Token::data(9))); // full
/// assert_eq!(q.peek_at(1).unwrap().data, 8); // the "neck"
/// assert_eq!(q.pop().unwrap().data, 7);
/// ```
#[derive(Debug, Clone)]
pub struct TaggedQueue {
    tokens: VecDeque<Token>,
    capacity: usize,
    stats: QueueStats,
    version: u64,
}

/// Lifetime traffic statistics for one queue. Cheap enough to keep
/// always-on; the trace/metrics layer reads them at end of run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Tokens accepted by [`TaggedQueue::push`].
    pub pushes: u64,
    /// Tokens removed by [`TaggedQueue::pop`].
    pub pops: u64,
    /// Pushes rejected because the queue was full.
    pub rejected: u64,
    /// Highest occupancy ever reached.
    pub high_water: usize,
}

/// Equality compares contents and capacity only — two queues that
/// arrived at the same state through different traffic histories are
/// equal, which is what the architectural-equivalence tests compare.
impl PartialEq for TaggedQueue {
    fn eq(&self, other: &Self) -> bool {
        self.tokens == other.tokens && self.capacity == other.capacity
    }
}

impl Eq for TaggedQueue {}

impl TaggedQueue {
    /// Creates an empty queue with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero; a zero-capacity queue can never
    /// carry data.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        TaggedQueue {
            tokens: VecDeque::with_capacity(capacity),
            capacity,
            stats: QueueStats::default(),
            version: 0,
        }
    }

    /// Lifetime traffic statistics.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// A monotonically increasing modification counter, bumped by
    /// every successful [`TaggedQueue::push`], [`TaggedQueue::pop`]
    /// and [`TaggedQueue::clear`]. Schedulers use it to detect that a
    /// queue's contents changed between cycles (e.g. a fabric push
    /// landing between two trigger evaluations) without re-reading the
    /// contents.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy in tokens.
    pub fn occupancy(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the queue holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Whether the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.tokens.len() == self.capacity
    }

    /// The head token, if any.
    pub fn peek(&self) -> Option<Token> {
        self.tokens.front().copied()
    }

    /// The token at depth `n` (0 = head, 1 = neck, ...), if present.
    pub fn peek_at(&self, n: usize) -> Option<Token> {
        self.tokens.get(n).copied()
    }

    /// Enqueues a token; returns whether it was accepted (false when
    /// full).
    #[must_use = "a rejected push means the queue was full"]
    pub fn push(&mut self, token: Token) -> bool {
        if self.is_full() {
            self.stats.rejected += 1;
            false
        } else {
            self.tokens.push_back(token);
            self.stats.pushes += 1;
            self.stats.high_water = self.stats.high_water.max(self.tokens.len());
            self.version += 1;
            true
        }
    }

    /// Dequeues the head token.
    pub fn pop(&mut self) -> Option<Token> {
        let token = self.tokens.pop_front();
        if token.is_some() {
            self.stats.pops += 1;
            self.version += 1;
        }
        token
    }

    /// Removes every token.
    pub fn clear(&mut self) {
        if !self.tokens.is_empty() {
            self.version += 1;
        }
        self.tokens.clear();
    }

    /// Iterates over queued tokens from head to tail.
    pub fn iter(&self) -> impl Iterator<Item = &Token> {
        self.tokens.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tia_isa::{Params, Tag};

    #[test]
    fn fifo_order_is_preserved() {
        let mut q = TaggedQueue::new(4);
        for i in 0..4 {
            assert!(q.push(Token::data(i)));
        }
        for i in 0..4 {
            assert_eq!(q.pop().unwrap().data, i);
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn push_to_full_queue_is_rejected_without_loss() {
        let mut q = TaggedQueue::new(1);
        assert!(q.push(Token::data(1)));
        assert!(!q.push(Token::data(2)));
        assert_eq!(q.occupancy(), 1);
        assert_eq!(q.peek().unwrap().data, 1);
    }

    #[test]
    fn head_and_neck_peeking() {
        let params = Params::default();
        let mut q = TaggedQueue::new(3);
        assert!(q.push(Token::new(Tag::new(1, &params).unwrap(), 10)));
        assert!(q.push(Token::new(Tag::new(2, &params).unwrap(), 20)));
        assert_eq!(q.peek_at(0).unwrap().tag.value(), 1);
        assert_eq!(q.peek_at(1).unwrap().tag.value(), 2);
        assert_eq!(q.peek_at(2), None);
    }

    #[test]
    fn occupancy_tracks_operations() {
        let mut q = TaggedQueue::new(2);
        assert_eq!(q.occupancy(), 0);
        assert!(q.is_empty());
        let _ = q.push(Token::data(1));
        assert_eq!(q.occupancy(), 1);
        assert!(!q.is_empty() && !q.is_full());
        let _ = q.push(Token::data(2));
        assert!(q.is_full());
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = TaggedQueue::new(0);
    }

    #[test]
    fn stats_track_traffic_and_high_water() {
        let mut q = TaggedQueue::new(2);
        assert!(q.push(Token::data(1)));
        assert!(q.push(Token::data(2)));
        assert!(!q.push(Token::data(3)));
        assert!(q.pop().is_some());
        assert!(q.pop().is_some());
        assert!(q.pop().is_none());
        let stats = q.stats();
        assert_eq!(stats.pushes, 2);
        assert_eq!(stats.pops, 2);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.high_water, 2);
    }

    #[test]
    fn equality_ignores_traffic_history() {
        let mut a = TaggedQueue::new(2);
        let b = TaggedQueue::new(2);
        assert!(a.push(Token::data(1)));
        let _ = a.pop();
        assert_eq!(a, b, "same contents, different histories");
    }
}
