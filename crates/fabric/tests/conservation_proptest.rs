//! Property tests on the fabric: FIFO order, token conservation
//! through channels and memory ports, and read-port response ordering.

use proptest::prelude::*;

use tia_fabric::{
    InputRef, Memory, OutputRef, ProcessingElement, ReadPort, SequentialWritePort, StreamSink,
    StreamSource, System, TaggedQueue, Token, WritePort,
};

/// A PE-free system type for pure-fabric tests.
#[derive(Debug)]
enum NoPe {}

impl ProcessingElement for NoPe {
    fn step(&mut self) {
        match *self {}
    }
    fn input_queue_mut(&mut self, _: usize) -> &mut TaggedQueue {
        match *self {}
    }
    fn output_queue_mut(&mut self, _: usize) -> &mut TaggedQueue {
        match *self {}
    }
    fn is_halted(&self) -> bool {
        match *self {}
    }
}

proptest! {
    #[test]
    fn queues_preserve_fifo_order_under_any_op_sequence(
        ops in prop::collection::vec(any::<Option<u32>>(), 1..200),
        capacity in 1usize..16,
    ) {
        // Some(v) = push v, None = pop. Model against a VecDeque.
        let mut queue = TaggedQueue::new(capacity);
        let mut model = std::collections::VecDeque::new();
        for op in ops {
            match op {
                Some(v) => {
                    let accepted = queue.push(Token::data(v));
                    prop_assert_eq!(accepted, model.len() < capacity);
                    if accepted {
                        model.push_back(v);
                    }
                }
                None => {
                    let got = queue.pop().map(|t| t.data);
                    prop_assert_eq!(got, model.pop_front());
                }
            }
            prop_assert_eq!(queue.occupancy(), model.len());
            prop_assert_eq!(queue.peek().map(|t| t.data), model.front().copied());
            if model.len() >= 2 {
                prop_assert_eq!(
                    queue.peek_at(1).map(|t| t.data),
                    model.get(1).copied()
                );
            }
        }
    }

    #[test]
    fn source_to_sink_conserves_every_token(
        values in prop::collection::vec(any::<u32>(), 0..100),
        capacity in 1usize..8,
    ) {
        let tokens: Vec<Token> = values.iter().copied().map(Token::data).collect();
        let mut sys: System<NoPe> = System::new(Memory::new(0));
        let src = sys.add_source(StreamSource::new(capacity, tokens));
        let sink = sys.add_sink(StreamSink::new(capacity));
        sys.connect(OutputRef::Source { source: src }, InputRef::Sink { sink })
            .expect("wires");
        for _ in 0..(values.len() * 4 + 16) {
            sys.step();
        }
        prop_assert_eq!(sys.sink(0).words(), values);
    }

    #[test]
    fn read_port_responses_arrive_in_request_order(
        addrs in prop::collection::vec(0u32..64, 1..50),
        latency in 1u32..8,
        capacity in 1usize..6,
    ) {
        let memory = Memory::from_words((100..164).collect());
        let mut sys: System<NoPe> = System::new(memory);
        let port = sys.add_read_port(ReadPort::new(capacity, latency));
        let tokens: Vec<Token> = addrs.iter().copied().map(Token::data).collect();
        let src = sys.add_source(StreamSource::new(capacity, tokens));
        let sink = sys.add_sink(StreamSink::new(capacity));
        sys.connect(OutputRef::Source { source: src }, InputRef::ReadAddr { port })
            .expect("wires");
        sys.connect(OutputRef::ReadData { port }, InputRef::Sink { sink })
            .expect("wires");
        for _ in 0..(addrs.len() * (latency as usize + 6) + 64) {
            sys.step();
        }
        let expected: Vec<u32> = addrs.iter().map(|&a| 100 + a).collect();
        prop_assert_eq!(sys.sink(0).words(), expected);
    }

    #[test]
    fn paired_and_sequential_write_ports_agree(
        values in prop::collection::vec(any::<u32>(), 1..60),
        base in 0u32..16,
    ) {
        // Store `values` at base.. with both port styles; the memory
        // images must match.
        let size = base as usize + values.len();
        let run_paired = {
            let mut sys: System<NoPe> = System::new(Memory::new(size));
            let wp = sys.add_write_port(WritePort::new(4));
            let addr_tokens: Vec<Token> =
                (0..values.len() as u32).map(|i| Token::data(base + i)).collect();
            let data_tokens: Vec<Token> = values.iter().copied().map(Token::data).collect();
            let a = sys.add_source(StreamSource::new(4, addr_tokens));
            let d = sys.add_source(StreamSource::new(4, data_tokens));
            sys.connect(OutputRef::Source { source: a }, InputRef::WriteAddr { port: wp })
                .expect("wires");
            sys.connect(OutputRef::Source { source: d }, InputRef::WriteData { port: wp })
                .expect("wires");
            for _ in 0..(values.len() * 4 + 32) {
                sys.step();
            }
            sys.memory().words().to_vec()
        };
        let run_sequential = {
            let mut sys: System<NoPe> = System::new(Memory::new(size));
            let wp = sys.add_seq_write_port(SequentialWritePort::new(4, base));
            let data_tokens: Vec<Token> = values.iter().copied().map(Token::data).collect();
            let d = sys.add_source(StreamSource::new(4, data_tokens));
            sys.connect(
                OutputRef::Source { source: d },
                InputRef::SeqWriteData { port: wp },
            )
            .expect("wires");
            for _ in 0..(values.len() * 4 + 32) {
                sys.step();
            }
            sys.memory().words().to_vec()
        };
        prop_assert_eq!(run_paired, run_sequential);
    }
}
