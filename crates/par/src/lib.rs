//! # `tia-par` — a dependency-free parallel-map engine
//!
//! The experiment harnesses in this workspace are dominated by
//! embarrassingly parallel sweeps: the §3 design-space exploration
//! fans 32 independent cycle-accurate simulations across a
//! (VT, VDD, frequency) grid, and every figure binary runs an
//! independent (workload × microarchitecture) matrix. This crate
//! parallelizes exactly that shape with nothing beyond
//! [`std::thread::scope`] — the build is offline with vendored
//! dependencies only, so `rayon` is not an option.
//!
//! Properties:
//!
//! * **Deterministic, index-ordered results** — [`par_map`] returns
//!   `results[i] == f(&items[i])` in input order regardless of worker
//!   count or scheduling, so parallel sweeps stay bit-identical to
//!   their serial equivalents.
//! * **Work stealing** — workers claim items from a shared atomic
//!   cursor in small chunks, so uneven item costs (a 4-deep +P+Q
//!   pipeline simulates slower than single-cycle TDX) don't leave
//!   cores idle.
//! * **Worker-count control** — the `TIA_THREADS` environment
//!   variable caps the pool ([`worker_count`]); `TIA_THREADS=1`
//!   degenerates to a serial in-place loop with no threads spawned.
//! * **Panic propagation** — a panic on any worker is re-raised on
//!   the caller with its original payload (lowest item index wins, so
//!   even the failure is deterministic).
//!
//! # Examples
//!
//! ```
//! let squares = tia_par::par_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Per-worker effectiveness of one parallel map: how many items each
/// worker claimed and how long it spent executing them, plus the wall
/// clock of the whole map. Benchmark harnesses (`dse_bench`) report
/// these so scaling results can be explained by data — a sweep whose
/// slowest worker is busy 95% of the wall clock is balance-limited by
/// physics, not by the scheduler; one at 50% points at chunking.
#[derive(Debug, Clone, Default)]
pub struct ParStats {
    /// Workers actually spawned (after clamping to the item count).
    pub workers: usize,
    /// The cursor claim granularity used.
    pub chunk: usize,
    /// Items executed per worker.
    pub items: Vec<usize>,
    /// Time each worker spent inside `f` (not waiting on the cursor or
    /// the deposit lock).
    pub busy: Vec<Duration>,
    /// Wall-clock time of the whole map.
    pub elapsed: Duration,
}

impl ParStats {
    /// Per-worker utilization: busy time over wall-clock time, in
    /// `[0, 1]` (0 for a zero-length run).
    pub fn utilization(&self) -> Vec<f64> {
        let wall = self.elapsed.as_secs_f64();
        self.busy
            .iter()
            .map(|b| {
                if wall > 0.0 {
                    (b.as_secs_f64() / wall).min(1.0)
                } else {
                    0.0
                }
            })
            .collect()
    }
}

/// The cursor claim granularity for `items` across `workers`: one item
/// at a time for small batches of expensive items (a design-space
/// sweep hands out 32 cycle-accurate simulations — batching two behind
/// one worker serializes the tail and caps 4-worker speedup well below
/// the core count), falling back to coarser chunks only when the item
/// count is large enough that per-claim atomic traffic could matter.
fn chunk_for(items: usize, workers: usize) -> usize {
    if items <= workers * 32 {
        1
    } else {
        (items / (workers * 8)).max(1)
    }
}

/// The environment variable capping the worker pool size.
pub const THREADS_ENV: &str = "TIA_THREADS";

/// Parses a `TIA_THREADS` value: a positive integer worker count.
///
/// # Errors
///
/// Returns a human-readable message for zero, empty and garbage
/// values — a pool must always have at least one worker, and a typo'd
/// setting silently falling back to the host default is exactly how a
/// "single-threaded" reproduction run ends up parallel.
pub fn parse_threads(value: &str) -> Result<usize, String> {
    match value.trim().parse::<usize>() {
        Ok(0) => Err(format!(
            "invalid {THREADS_ENV} value `{value}`: a worker pool needs at least 1 thread"
        )),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "invalid {THREADS_ENV} value `{value}`: expected a positive integer"
        )),
    }
}

/// The worker count [`par_map`] uses: `TIA_THREADS` when set,
/// otherwise [`std::thread::available_parallelism`] (1 if even that
/// is unavailable).
///
/// # Panics
///
/// A set-but-invalid `TIA_THREADS` (zero, empty, garbage) aborts with
/// a clear message rather than being silently ignored — see
/// [`parse_threads`].
pub fn worker_count() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(value) => match parse_threads(&value) {
            Ok(n) => n,
            Err(message) => panic!("{message}"),
        },
        Err(std::env::VarError::NotPresent) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        Err(std::env::VarError::NotUnicode(_)) => {
            panic!("invalid {THREADS_ENV} value: not valid UTF-8")
        }
    }
}

/// Applies `f` to every item, returning results in input order.
/// Equivalent to `items.iter().map(f).collect()` but fanned across
/// [`worker_count`] scoped threads.
///
/// # Panics
///
/// Re-raises the panic of the lowest-indexed item whose `f` call
/// panicked, after all workers have stopped.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(worker_count(), items, f)
}

/// [`par_map`] with an explicit worker count (still clamped to the
/// item count; `workers <= 1` runs serially on the caller's thread).
///
/// # Panics
///
/// Re-raises the panic of the lowest-indexed item whose `f` call
/// panicked, after all workers have stopped.
pub fn par_map_with<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_stats_with(workers, items, f).0
}

/// [`par_map_with`] returning per-worker [`ParStats`] alongside the
/// results. The results are identical to [`par_map_with`] (and to the
/// serial map); the stats are observability only.
///
/// # Panics
///
/// Re-raises the panic of the lowest-indexed item whose `f` call
/// panicked, after all workers have stopped.
pub fn par_map_stats_with<T, R, F>(workers: usize, items: &[T], f: F) -> (Vec<R>, ParStats)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let started = Instant::now();
    let workers = workers.max(1).min(items.len());
    if workers <= 1 {
        // The degenerate pool: no threads, no atomics, same results.
        let results: Vec<R> = items.iter().map(f).collect();
        let elapsed = started.elapsed();
        return (
            results,
            ParStats {
                workers: 1,
                chunk: items.len().max(1),
                items: vec![items.len()],
                busy: vec![elapsed],
                elapsed,
            },
        );
    }

    // Workers claim `chunk`-sized runs of indices from a shared
    // cursor — cheap dynamic load balancing (see [`chunk_for`]).
    let chunk = chunk_for(items.len(), workers);
    let cursor = AtomicUsize::new(0);
    // Each worker accumulates (index, result) pairs locally and
    // deposits them once at the end, so the lock is uncontended.
    let deposits: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    let panics: Mutex<Vec<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(Vec::new());
    let worker_stats: Mutex<Vec<(usize, usize, Duration)>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        // `move` closures capture these shared references by copy and
        // the worker index by value.
        let (cursor, deposits, panics, worker_stats, f) =
            (&cursor, &deposits, &panics, &worker_stats, &f);
        for w in 0..workers {
            scope.spawn(move || {
                let mut local: Vec<(usize, R)> = Vec::new();
                let mut busy = Duration::ZERO;
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= items.len() {
                        break;
                    }
                    let end = (start + chunk).min(items.len());
                    for (i, item) in items[start..end].iter().enumerate() {
                        let item_started = Instant::now();
                        match catch_unwind(AssertUnwindSafe(|| f(item))) {
                            Ok(r) => {
                                busy += item_started.elapsed();
                                local.push((start + i, r));
                            }
                            Err(payload) => {
                                panics.lock().unwrap().push((start + i, payload));
                                // Drain the cursor so every worker
                                // winds down promptly.
                                cursor.store(items.len(), Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                }
                worker_stats.lock().unwrap().push((w, local.len(), busy));
                deposits.lock().unwrap().append(&mut local);
            });
        }
    });

    let mut panics = panics.into_inner().unwrap();
    if !panics.is_empty() {
        panics.sort_by_key(|(i, _)| *i);
        resume_unwind(panics.remove(0).1);
    }

    let mut pairs = deposits.into_inner().unwrap();
    debug_assert_eq!(pairs.len(), items.len(), "every item produced a result");
    pairs.sort_by_key(|(i, _)| *i);

    let mut per_worker = worker_stats.into_inner().unwrap();
    per_worker.sort_by_key(|(w, _, _)| *w);
    let stats = ParStats {
        workers,
        chunk,
        items: per_worker.iter().map(|(_, n, _)| *n).collect(),
        busy: per_worker.iter().map(|(_, _, b)| *b).collect(),
        elapsed: started.elapsed(),
    };
    (pairs.into_iter().map(|(_, r)| r).collect(), stats)
}

/// Runs `f` on every item for its side effects, fanned across
/// [`worker_count`] scoped threads. Ordering of the *calls* is
/// unspecified (that is the point); use [`par_map`] when results
/// matter.
///
/// # Panics
///
/// Propagates worker panics like [`par_map`].
pub fn par_for_each<T, F>(items: &[T], f: F)
where
    T: Sync,
    F: Fn(&T) + Sync,
{
    par_map(items, |item| f(item));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_are_index_ordered_at_every_worker_count() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for workers in [1, 2, 3, 4, 7, 16, 64] {
            let got = par_map_with(workers, &items, |&x| x * 3 + 1);
            assert_eq!(got, expected, "workers = {workers}");
        }
    }

    #[test]
    fn empty_and_single_item_inputs_work() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[41u32], |&x| x + 1), vec![42]);
    }

    #[test]
    fn uneven_item_costs_still_complete() {
        // Front-loaded heavy items force the chunked cursor to
        // rebalance; every result must still land at its index.
        let items: Vec<u64> = (0..64).rev().collect();
        let got = par_map_with(4, &items, |&x| {
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i);
            }
            std::hint::black_box(acc);
            x
        });
        assert_eq!(got, items);
    }

    #[test]
    fn par_for_each_visits_every_item_once() {
        let items: Vec<usize> = (0..100).collect();
        let hits: Vec<AtomicU64> = (0..items.len()).map(|_| AtomicU64::new(0)).collect();
        par_for_each(&items, |&i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn a_worker_panic_propagates_with_its_payload() {
        let items: Vec<u32> = (0..32).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            par_map_with(4, &items, |&x| {
                if x == 13 {
                    panic!("unlucky item {x}");
                }
                x
            })
        }))
        .expect_err("the panic must propagate to the caller");
        let message = caught.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(message.contains("unlucky item 13"), "payload: {message:?}");
    }

    #[test]
    fn the_lowest_indexed_panic_wins() {
        // Run repeatedly: whichever worker panics first, the caller
        // must always observe the panic of the lowest index.
        for _ in 0..8 {
            let items: Vec<u32> = (0..64).collect();
            let caught = catch_unwind(AssertUnwindSafe(|| {
                par_map_with(4, &items, |&x| {
                    if x % 17 == 5 {
                        panic!("boom at {x}");
                    }
                    x
                })
            }))
            .expect_err("must panic");
            let message = caught.downcast_ref::<String>().cloned().unwrap_or_default();
            assert_eq!(message, "boom at 5");
        }
    }

    #[test]
    fn stats_account_for_every_item_and_bound_utilization() {
        let items: Vec<u64> = (0..64).collect();
        let (got, stats) = par_map_stats_with(4, &items, |&x| x + 1);
        assert_eq!(got, (1..=64).collect::<Vec<_>>());
        assert_eq!(stats.workers, 4);
        assert_eq!(stats.chunk, 1, "few items steal one at a time");
        assert_eq!(stats.items.len(), 4);
        assert_eq!(stats.busy.len(), 4);
        assert_eq!(stats.items.iter().sum::<usize>(), items.len());
        for u in stats.utilization() {
            assert!((0.0..=1.0).contains(&u), "utilization {u} out of range");
        }
    }

    #[test]
    fn serial_stats_describe_one_fully_busy_worker() {
        let items: Vec<u64> = (0..5).collect();
        let (got, stats) = par_map_stats_with(1, &items, |&x| x * 2);
        assert_eq!(got, vec![0, 2, 4, 6, 8]);
        assert_eq!(stats.workers, 1);
        assert_eq!(stats.items, vec![5]);
    }

    #[test]
    fn large_batches_still_use_coarse_chunks() {
        assert_eq!(chunk_for(32, 4), 1, "the DSE shape steals singly");
        assert!(chunk_for(100_000, 4) > 1, "huge batches amortize claims");
    }

    #[test]
    fn worker_count_defaults_to_at_least_one() {
        // `worker_count` itself reads the process environment; the
        // parse rules are what we can test hermetically below.
        assert!(worker_count() >= 1);
    }

    #[test]
    fn parse_threads_accepts_positive_integers() {
        assert_eq!(parse_threads("1"), Ok(1));
        assert_eq!(parse_threads("4"), Ok(4));
        assert_eq!(parse_threads(" 2 "), Ok(2), "whitespace trims");
    }

    #[test]
    fn parse_threads_rejects_zero_empty_and_garbage_loudly() {
        let zero = parse_threads("0").expect_err("0 workers is nonsense");
        assert!(zero.contains("TIA_THREADS"), "message names the variable");
        assert!(zero.contains('0'), "message echoes the bad value");

        let empty = parse_threads("").expect_err("empty is not a count");
        assert!(empty.contains("TIA_THREADS"));

        for garbage in ["abc", "-2", "1.5", "4x", "０"] {
            let err = parse_threads(garbage).expect_err(garbage);
            assert!(err.contains("TIA_THREADS"), "{garbage}: {err}");
        }
    }
}
