//! Minimal fixed-width table rendering for harness output.

use std::fmt::Write as _;

/// A simple left-padded text table.
///
/// # Examples
///
/// ```
/// use tia_bench::Table;
///
/// let mut t = Table::new(&["name", "value"]);
/// t.row(&["answer", "42"]);
/// let text = t.render();
/// assert!(text.contains("answer"));
/// assert!(text.contains("42"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of owned strings.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with padded columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}  ", cell, width = widths[i]);
            }
            let _ = writeln!(out);
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_are_aligned() {
        let mut t = Table::new(&["a", "long header"]);
        t.row(&["xxxxxxx", "1"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        // Both data columns start at the same offset in each line.
        let header_pos = lines[0].find("long header").unwrap();
        let value_pos = lines[2].find('1').unwrap();
        assert_eq!(header_pos, value_pos);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_rows_panic() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only one"]);
    }
}
