//! Machine-readable figure output: the figure binaries accept
//! `--json FILE` and, when given, write their data points as a JSON
//! document alongside the human-readable table on stdout — so plots
//! and regression checks consume structured data instead of scraping
//! text.

use std::fs;
use std::path::Path;

use serde::Serialize;

/// Parses the common harness flag `--json FILE`: the path the binary
/// should write its machine-readable data points to, if any.
pub fn json_out_from_args() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--json" {
            return args.next();
        }
    }
    None
}

/// Serializes `value` as pretty-printed JSON into `path`, creating
/// parent directories as needed.
///
/// # Panics
///
/// Panics when the file cannot be written — in the harness a missing
/// output directory is an operator error worth stopping for.
pub fn write_json<T: Serialize>(path: &str, value: &T) {
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)
                .unwrap_or_else(|e| panic!("cannot create {}: {e}", parent.display()));
        }
    }
    let text = serde_json::to_string_pretty(value).expect("figure data serializes infallibly");
    fs::write(path, text).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize)]
    struct Point {
        name: String,
        value: f64,
    }

    #[test]
    fn write_json_creates_parents_and_roundtrips() {
        let dir = std::env::temp_dir().join("tia-bench-jsonout-test");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.json");
        let path_text = path.to_str().expect("utf-8 temp path");
        write_json(
            path_text,
            &vec![Point {
                name: "cpi".to_string(),
                value: 1.5,
            }],
        );
        let doc: serde_json::Value =
            serde_json::from_str(&fs::read_to_string(&path).expect("written")).expect("valid");
        let first = &doc.as_array().expect("array")[0];
        assert_eq!(
            first.get("name").and_then(|v| v.as_str()),
            Some("cpi"),
            "field survives the roundtrip"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
