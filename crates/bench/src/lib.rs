//! # `tia-bench` — the experiment harness
//!
//! One binary per table and figure of the paper (see `src/bin/`),
//! built on the measurement and formatting helpers in this library.
//! `DESIGN.md` at the repository root maps every paper result to its
//! regenerating binary; `EXPERIMENTS.md` records paper-reported versus
//! measured values.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod jsonout;
pub mod measure;
pub mod table;

pub use jsonout::{json_out_from_args, write_json};
pub use measure::{
    activity_of, bst_activity_source, coarse_stack, run_uarch_workload, scale_from_args,
    scale_label, store_path_from_args, suite_activity_source, suite_context, suite_design_points,
    sweep_through_store, MeasuredRun,
};
pub use table::Table;
