//! Shared measurement plumbing: run workloads on the cycle-level
//! model and expose activity to the energy model's design-space
//! exploration.

use std::path::{Path, PathBuf};

use tia_core::{UarchConfig, UarchCounters, UarchPe};
use tia_energy::dse::{par_explore, CpiMeasurement, DesignPoint};
use tia_energy::{CheckpointedCpi, SweepContext};
use tia_fabric::FastForwardStats;
use tia_isa::Params;
use tia_prof::{CycleStack, LeafShares};
use tia_workloads::{Scale, WorkloadKind};

/// The outcome of running one workload on one microarchitecture.
#[derive(Debug, Clone, Copy)]
pub struct MeasuredRun {
    /// The workload.
    pub kind: WorkloadKind,
    /// The microarchitecture.
    pub config: UarchConfig,
    /// The designated worker PE's counters.
    pub counters: UarchCounters,
    /// Global system cycles of the run (≥ the worker's own cycles;
    /// the excess is the worker's halted tail).
    pub system_cycles: u64,
    /// Fast-forward engine effectiveness over the run.
    pub ff: FastForwardStats,
}

/// Runs one workload to completion on the cycle-level model and
/// returns the worker's counters. Results are verified against the
/// golden model before returning.
///
/// # Panics
///
/// Panics if the workload fails to build, run or verify — these are
/// harness bugs, not user errors.
pub fn run_uarch_workload(kind: WorkloadKind, config: UarchConfig, scale: Scale) -> MeasuredRun {
    let params = Params::default();
    let mut factory = |p: &Params, prog| UarchPe::new(p, config, prog);
    let mut built = kind
        .build(&params, scale, &mut factory)
        .unwrap_or_else(|e| panic!("{kind} on {config}: build failed: {e}"));
    built
        .run_to_completion()
        .unwrap_or_else(|e| panic!("{kind} on {config}: {e}"));
    MeasuredRun {
        kind,
        config,
        counters: *built.system.pe(built.worker).counters(),
        system_cycles: built.system.cycle(),
        ff: built.system.fast_forward_stats(),
    }
}

/// The worker PE's coarse hierarchical cycle stack, derived from its
/// cumulative counters (no per-cycle observation, so the whole
/// not-triggered count lands in `idle`; use `tia_prof::profile_run`
/// for the fine backpressure/memory split). Any cycles the worker's
/// own counter is short of the run's global cycle count — plus any
/// issue slots left unresolved — land in `halted`/`in-flight` so the
/// stack still sums to `system_cycles`.
pub fn coarse_stack(run: &MeasuredRun) -> CycleStack {
    let c = run.counters;
    let mut stack = CycleStack {
        retire: c.retired,
        quash: c.quashed,
        predicate_hazard: c.pred_hazard_cycles,
        data_hazard: c.data_hazard_cycles,
        predictor_recovery: c.forbidden_cycles,
        idle: c.not_triggered_cycles,
        halted: run.system_cycles.max(c.cycles) - c.cycles,
        ..CycleStack::default()
    };
    // §3.3 identity residual: issue slots still in flight at run end.
    stack.in_flight = c.cycles.saturating_sub(stack.total() - stack.halted);
    stack
}

/// A [`tia_energy::dse::CpiSource`] backed by the `bst` workload, as
/// in the paper's methodology: "we extracted gate-level activity
/// factors from a run of the binary search tree program", which "had
/// the most balanced combination of I/O channel use, computation and
/// memory access delay" (§3).
pub fn bst_activity_source(scale: Scale) -> impl Fn(&UarchConfig) -> CpiMeasurement + Sync {
    move |config: &UarchConfig| activity_of(&run_uarch_workload(WorkloadKind::Bst, *config, scale))
}

/// The CPI/activity measurement the DSE consumes, derived from one
/// measured run. Shared so ad-hoc sources (e.g. `dse_bench`'s
/// cycle-counting wrapper) produce exactly what
/// [`bst_activity_source`] would.
pub fn activity_of(run: &MeasuredRun) -> CpiMeasurement {
    let c = run.counters;
    let stack = coarse_stack(run);
    let shares = stack.shares(stack.total());
    CpiMeasurement {
        cpi: c.cpi(),
        issue_rate: (c.retired + c.quashed) as f64 / c.cycles.max(1) as f64,
        stack: shares,
        bottleneck: shares.bottleneck(),
    }
}

/// A [`tia_energy::dse::CpiSource`] averaging CPI and issue rate over
/// the whole ten-workload suite, matching the Figure 5 averages. This
/// is the delay model for the design-space exploration: the paper's
/// Figure 8 instruction latencies imply a suite-level CPI (≈1.6 at
/// TDX1|X2 +Q), not the memory-serial `bst` CPI, while `bst` remains
/// the *power activity* reference (§3).
pub fn suite_activity_source(scale: Scale) -> impl Fn(&UarchConfig) -> CpiMeasurement + Sync {
    move |config: &UarchConfig| {
        let mut cpi_sum = 0.0;
        let mut issue_sum = 0.0;
        let mut stacks = [LeafShares::default(); tia_workloads::ALL_WORKLOADS.len()];
        for (i, kind) in tia_workloads::ALL_WORKLOADS.into_iter().enumerate() {
            let run = run_uarch_workload(kind, *config, scale);
            let c = run.counters;
            cpi_sum += c.cpi();
            issue_sum += (c.retired + c.quashed) as f64 / c.cycles.max(1) as f64;
            let stack = coarse_stack(&run);
            stacks[i] = stack.shares(stack.total());
        }
        let n = tia_workloads::ALL_WORKLOADS.len() as f64;
        let stack = LeafShares::average(&stacks);
        CpiMeasurement {
            cpi: cpi_sum / n,
            issue_rate: issue_sum / n,
            stack,
            bottleneck: stack.bottleneck(),
        }
    }
}

/// Parses the common harness flags: `--test-scale` selects the small
/// input set, otherwise the paper-scale inputs are used.
///
/// Also honours `--no-fast-forward`, which disables the fabric's
/// fast-forward engine for the whole process (every `System` built
/// afterwards reads the `TIA_FAST_FORWARD` environment variable), and
/// `--no-jit`, which likewise disables the compiled trigger engine
/// (every PE built afterwards reads `TIA_JIT`), so each figure/table
/// binary can be A/B-compared without code changes.
pub fn scale_from_args() -> Scale {
    if std::env::args().any(|a| a == "--no-fast-forward") {
        std::env::set_var("TIA_FAST_FORWARD", "0");
    }
    if std::env::args().any(|a| a == "--no-jit") {
        std::env::set_var("TIA_JIT", "0");
    }
    if std::env::args().any(|a| a == "--test-scale") {
        Scale::Test
    } else {
        Scale::Paper
    }
}

/// The store-key label for an input scale. Part of every measurement
/// key, so test-scale records can never answer a paper-scale sweep.
pub fn scale_label(scale: Scale) -> &'static str {
    match scale {
        Scale::Test => "test",
        Scale::Paper => "paper",
    }
}

/// The sweep context the suite-averaged figure/table sweeps key their
/// measurements under (see [`suite_activity_source`]).
pub fn suite_context(scale: Scale) -> SweepContext {
    SweepContext::new("suite", scale_label(scale))
}

/// Reads the measurement-store path from `--store PATH` or the
/// `TIA_STORE` environment variable (the flag wins). Returns `None`
/// when neither is set — sweeps then simulate everything, as before
/// the store existed.
///
/// # Panics
///
/// Panics on a present-but-useless value — `--store` without a path,
/// an empty/whitespace path, or non-UTF-8 `TIA_STORE` — rather than
/// silently running the sweep uncached.
pub fn store_path_from_args() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--store") {
        let path = args
            .get(i + 1)
            .unwrap_or_else(|| panic!("--store needs a PATH argument"));
        assert!(
            !path.trim().is_empty(),
            "--store needs a non-empty PATH argument"
        );
        return Some(PathBuf::from(path));
    }
    match std::env::var("TIA_STORE") {
        Ok(path) => {
            assert!(
                !path.trim().is_empty(),
                "invalid TIA_STORE value: empty; set a store file path or unset it"
            );
            Some(PathBuf::from(path))
        }
        Err(std::env::VarError::NotPresent) => None,
        Err(std::env::VarError::NotUnicode(_)) => {
            panic!("invalid TIA_STORE value: not valid UTF-8")
        }
    }
}

/// Runs the suite-averaged sweep through the measurement store at
/// `path`, returning the design points plus how many were answered
/// from the store vs simulated. A stale store file at `path` is
/// discarded and regenerated (see
/// [`tia_energy::open_measurement_store`]).
pub fn sweep_through_store(scale: Scale, path: &Path) -> (Vec<DesignPoint>, u64, u64) {
    let source = CheckpointedCpi::resume(suite_activity_source(scale), path, suite_context(scale))
        .unwrap_or_else(|e| panic!("cannot open measurement store {}: {e}", path.display()));
    let points = par_explore(&source);
    eprintln!(
        "measurement store {}: {} point(s) answered from store, {} simulated",
        path.display(),
        source.lookups(),
        source.misses()
    );
    (points, source.lookups(), source.misses())
}

/// The full suite-averaged design-space sweep every figure/table
/// binary consumes. When a store path is configured (see
/// [`store_path_from_args`]) the sweep is keyed through the
/// content-addressed measurement store, so repeated regenerations
/// re-simulate only points whose inputs changed.
pub fn suite_design_points(scale: Scale) -> Vec<DesignPoint> {
    match store_path_from_args() {
        Some(path) => sweep_through_store(scale, &path).0,
        None => par_explore(&suite_activity_source(scale)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tia_core::Pipeline;

    #[test]
    fn a_measured_run_verifies_and_reports() {
        let run = run_uarch_workload(
            WorkloadKind::Gcd,
            UarchConfig::with_pq(Pipeline::T_DX),
            Scale::Test,
        );
        assert!(run.counters.retired > 30);
        assert!(run.counters.cycles >= run.counters.retired);
    }

    #[test]
    fn activity_carries_a_normalized_stack() {
        let run = run_uarch_workload(
            WorkloadKind::Bst,
            UarchConfig::with_pq(Pipeline::T_D_X1_X2),
            Scale::Test,
        );
        assert!(run.system_cycles >= run.counters.cycles);
        let stack = coarse_stack(&run);
        assert_eq!(stack.total(), run.system_cycles.max(run.counters.cycles));
        let m = activity_of(&run);
        assert!((m.stack.total() - 1.0).abs() < 1e-9, "shares normalize");
        assert_eq!(m.bottleneck, m.stack.bottleneck());
        // The fast-forward counters reflect the engine's default-on
        // run: probes never undercount hits.
        assert!(run.ff.probes >= run.ff.probe_hits);
    }

    #[test]
    fn bst_activity_is_sane() {
        let source = bst_activity_source(Scale::Test);
        let m = source(&UarchConfig::base(Pipeline::TDX));
        assert!(m.cpi >= 1.0);
        assert!(m.issue_rate > 0.0 && m.issue_rate <= 1.0);
        // CPI and issue rate are reciprocal for an unpipelined design
        // with no quashing.
        assert!((m.cpi * m.issue_rate - 1.0).abs() < 1e-9);
    }
}
