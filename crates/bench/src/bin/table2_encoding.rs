//! Regenerates **Table 2**: instruction fields and their widths under
//! the default parameter assignment.

use tia_bench::Table;
use tia_isa::Params;

fn main() {
    let params = Params::default();
    let layout = params.layout();
    let mut t = Table::new(&["Field", "Description", "Width", "Offset"]);
    for f in layout.fields() {
        t.row_owned(vec![
            f.name.to_string(),
            f.description.to_string(),
            f.width.to_string(),
            f.offset.to_string(),
        ]);
    }
    println!("Table 2: instruction fields for the ISA encoding.\n");
    print!("{}", t.render());
    println!();
    println!(
        "Total encoded width: {} bits (paper: 106); host-padded: {} bits (paper: 128).",
        layout.total_bits(),
        layout.padded_bits()
    );
}
