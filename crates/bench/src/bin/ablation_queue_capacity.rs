//! **Ablation: register-queue capacity.**
//!
//! The paper fixes small register queues and shows that accounting
//! (+Q) beats padding them (§5.3: "padding the output queues would
//! require D × N additional queue entries"). This harness sweeps the
//! capacity directly: with deep queues the conservative scheduler's
//! stalls shrink (tokens buffer up), trading queue area — exactly the
//! WaveScalar reject-buffer tradeoff — while +Q gets most of the
//! benefit at minimal capacity.

use tia_bench::{scale_from_args, Table};
use tia_core::{Pipeline, UarchConfig, UarchPe};
use tia_isa::Params;
use tia_workloads::{Scale, WorkloadKind};

fn run(kind: WorkloadKind, config: UarchConfig, capacity: usize, scale: Scale) -> f64 {
    let mut params = Params::default();
    params.queue_capacity = capacity;
    let mut factory = |p: &Params, prog| UarchPe::new(p, config, prog);
    let mut built = kind
        .build(&params, scale, &mut factory)
        .unwrap_or_else(|e| panic!("{kind}: {e}"));
    built
        .run_to_completion()
        .unwrap_or_else(|e| panic!("{kind} at capacity {capacity}: {e}"));
    built.system.pe(built.worker).counters().cpi()
}

fn main() {
    let scale = scale_from_args();
    println!("Ablation: queue capacity vs scheduler discipline (T|D|X1|X2, merge).\n");
    let mut t = Table::new(&[
        "capacity",
        "conservative CPI",
        "+Q accounting CPI",
        "padded (reject buffer) CPI",
    ]);
    let disciplines = [
        UarchConfig::base(Pipeline::T_D_X1_X2),
        UarchConfig::with_q(Pipeline::T_D_X1_X2),
        UarchConfig::with_padding(Pipeline::T_D_X1_X2),
    ];
    // Every (capacity, discipline) point is an independent run of the
    // merge worker; sweep them across the pool.
    let points: Vec<(usize, UarchConfig)> = [2usize, 3, 4, 6, 8, 12, 16]
        .iter()
        .flat_map(|&capacity| disciplines.iter().map(move |&config| (capacity, config)))
        .collect();
    let cpis = tia_par::par_map(&points, |&(capacity, config)| {
        run(WorkloadKind::Merge, config, capacity, scale)
    });
    for (chunk, cpi_row) in points.chunks(disciplines.len()).zip(cpis.chunks(3)) {
        t.row_owned(vec![
            chunk[0].0.to_string(),
            format!("{:.3}", cpi_row[0]),
            format!("{:.3}", cpi_row[1]),
            format!("{:.3}", cpi_row[2]),
        ]);
    }
    print!("{}", t.render());
    println!();
    println!("findings: raw capacity does NOT fix the conservative scheduler — its");
    println!("stall is an in-flight-window effect, not a buffering effect. WaveScalar");
    println!("reject-buffer padding (13% area / 12% power, `sec54_overheads`) removes");
    println!("only the output-side conservatism; the paper's accounting (+Q, ~free)");
    println!("also covers the input side (pending dequeues), which dominates on this");
    println!("dequeue-heavy worker — +Q strictly dominates padding in cycles AND cost.");
}
