//! Profiler smoke gate: sweeps the full workload suite under three
//! representative microarchitectures with the hierarchical cycle-stack
//! profiler attached, asserting the attribution invariant (every PE's
//! stack sums to the observed cycle count) on every run, then
//! A/B-times the same sweep with and without the profiler.
//!
//! ```text
//! cargo run --release -p tia-bench --bin prof_smoke -- \
//!     [--test-scale] [--assert-overhead]
//! ```
//!
//! `--assert-overhead` turns the timing comparison into a gate: the
//! process exits nonzero if the profiled sweep is more than 10% slower
//! than the unprofiled baseline (plus a small absolute slack for timer
//! noise at test scale). CI runs this at test scale.

use std::time::Instant;

use tia_bench::scale_from_args;
use tia_core::{Pipeline, UarchConfig, UarchPe};
use tia_fabric::StopReason;
use tia_isa::Params;
use tia_prof::{profile_run, Leaf};
use tia_workloads::{Scale, WorkloadKind, ALL_WORKLOADS};

fn build(kind: WorkloadKind, config: UarchConfig, scale: Scale) -> tia_workloads::Built<UarchPe> {
    let params = Params::default();
    let mut factory = |p: &Params, prog| UarchPe::new(p, config, prog);
    kind.build(&params, scale, &mut factory)
        .unwrap_or_else(|e| panic!("{kind} on {config}: build failed: {e}"))
}

/// Runs the whole suite unprofiled; returns total simulated cycles.
fn sweep_plain(configs: &[UarchConfig], scale: Scale) -> u64 {
    let mut cycles = 0;
    for &config in configs {
        for kind in ALL_WORKLOADS {
            let mut built = build(kind, config, scale);
            let reason = built.system.run(built.max_cycles);
            assert_eq!(reason, StopReason::Condition, "{kind} on {config} halts");
            cycles += built.system.cycle();
        }
    }
    cycles
}

/// Runs the whole suite under the profiler, asserting the attribution
/// invariant for every PE of every run; returns total simulated cycles
/// and the per-run dominant leaves.
fn sweep_profiled(configs: &[UarchConfig], scale: Scale) -> (u64, Vec<Leaf>) {
    let mut cycles = 0;
    let mut bottlenecks = Vec::new();
    for &config in configs {
        for kind in ALL_WORKLOADS {
            let mut built = build(kind, config, scale);
            let (reason, profiler) = profile_run(&mut built.system, built.max_cycles);
            assert_eq!(reason, StopReason::Condition, "{kind} on {config} halts");
            let observed = profiler.observed_cycles();
            assert_eq!(
                observed,
                built.system.cycle(),
                "{kind} on {config}: profiler observed every cycle"
            );
            // The invariant the whole profiler is built around: no
            // cycle is lost or double-counted, on any PE. This is the
            // release-mode twin of the debug_assert inside the
            // profiler itself.
            for pe in 0..profiler.num_pes() {
                assert_eq!(
                    profiler.stack(pe).total(),
                    observed,
                    "{kind} on {config} pe {pe}: cycle-stack attribution leak"
                );
            }
            bottlenecks.push(profiler.aggregate().bottleneck());
            cycles += built.system.cycle();
        }
    }
    (cycles, bottlenecks)
}

fn main() {
    let scale = scale_from_args();
    let assert_overhead = std::env::args().any(|a| a == "--assert-overhead");
    let configs = [
        UarchConfig::base(Pipeline::TDX),
        UarchConfig::with_p(Pipeline::T_DX),
        UarchConfig::with_pq(Pipeline::T_D_X1_X2),
    ];
    let runs = configs.len() * ALL_WORKLOADS.len();

    // Warm caches before timing, and take the best of three sweeps per
    // arm so a scheduler hiccup cannot fail the gate.
    let _ = sweep_plain(&configs, scale);
    let mut plain_seconds = f64::INFINITY;
    let mut profiled_seconds = f64::INFINITY;
    let mut plain_cycles = 0;
    let mut profiled = (0, Vec::new());
    for _ in 0..3 {
        let start = Instant::now();
        plain_cycles = sweep_plain(&configs, scale);
        plain_seconds = plain_seconds.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        profiled = sweep_profiled(&configs, scale);
        profiled_seconds = profiled_seconds.min(start.elapsed().as_secs_f64());
    }
    let (profiled_cycles, bottlenecks) = profiled;
    assert_eq!(
        plain_cycles, profiled_cycles,
        "profiling must not change simulated behavior"
    );

    let overhead = profiled_seconds / plain_seconds - 1.0;
    println!(
        "prof_smoke: {runs} runs x 2 arms, {plain_cycles} cycles each; \
         attribution invariant held on every PE of every run"
    );
    println!(
        "plain {plain_seconds:.3}s, profiled {profiled_seconds:.3}s \
         ({:+.1}% overhead)",
        100.0 * overhead
    );
    let mut histogram: Vec<(Leaf, usize)> = Vec::new();
    for leaf in Leaf::ALL {
        let count = bottlenecks.iter().filter(|&&b| b == leaf).count();
        if count > 0 {
            histogram.push((leaf, count));
        }
    }
    histogram.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
    let summary: Vec<String> = histogram
        .iter()
        .map(|(leaf, count)| format!("{leaf} x{count}"))
        .collect();
    println!("dominant leaves across runs: {}", summary.join(", "));

    if assert_overhead {
        // 10% relative plus 50ms absolute: at test scale a sweep takes
        // tens of milliseconds and a bare ratio would gate on timer
        // granularity rather than profiler cost.
        assert!(
            profiled_seconds <= plain_seconds * 1.10 + 0.05,
            "profiled sweep is more than 10% slower than the baseline \
             ({profiled_seconds:.3}s vs {plain_seconds:.3}s)"
        );
        println!("overhead gate passed (<= 10%)");
    }
}
