//! Regenerates the **§3 characterization grid**: the maximum closing
//! frequency of every pipeline at every (library, voltage) pair — the
//! table the paper's standard-cell characterization sweep implies
//! ("characterized ... at 0.6V, 0.7V, 0.8V, 0.9V, and 1.0V, and target
//! frequencies of 100MHz to 1.5GHz"; LVT/HVT at 0.4–1.0 V with
//! near-threshold refinement).

use tia_bench::Table;
use tia_core::{Pipeline, UarchConfig};
use tia_energy::critical_path::{critical_path_fo4, max_frequency_mhz};
use tia_energy::tech::VtClass;

fn main() {
    for vt in VtClass::ALL {
        println!(
            "{} library (Vth = {:.2} V): maximum closing frequency in MHz",
            vt,
            vt.threshold()
        );
        let voltages = vt.characterized_voltages();
        let mut header: Vec<String> = vec!["pipeline".into(), "FO4 (+P)".into()];
        header.extend(voltages.iter().map(|v| format!("{v:.1} V")));
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut t = Table::new(&header_refs);
        for pipeline in Pipeline::ALL {
            let base = UarchConfig::base(pipeline);
            let spec = UarchConfig::with_p(pipeline);
            let mut cells = vec![
                pipeline.to_string(),
                format!(
                    "{:.1} ({:.1})",
                    critical_path_fo4(&base),
                    critical_path_fo4(&spec)
                ),
            ];
            for &vdd in voltages {
                cells.push(format!("{:.0}", max_frequency_mhz(&base, vdd, vt)));
            }
            t.row_owned(cells);
        }
        print!("{}", t.render());
        println!();
    }
    println!("(paper anchors: T|D|X1|X2 at SVT 1.0 V closes at 1184 MHz with a");
    println!(" 53.6 FO4 trigger stage, 64.3 FO4 with speculation; 'the trigger");
    println!(" stage largely sets the pipeline balance ... in the 50-60 FO4 range';");
    println!(" subthreshold high-VT designs close in the 10-100 MHz band.)");
}
