//! Regenerates **Figure 5**: CPI stacks of the seven pipelined
//! microarchitectures (plus single-cycle TDX) with the predicate
//! prediction (+P) and effective queue status (+Q) optimizations
//! selectively enabled, averaged over the ten workloads.

use serde::Serialize;
use tia_bench::{json_out_from_args, run_uarch_workload, scale_from_args, write_json, Table};
use tia_core::{CpiStack, Pipeline, UarchConfig};
use tia_workloads::ALL_WORKLOADS;

#[derive(Serialize)]
struct StackPoint {
    microarchitecture: String,
    cpi: f64,
    stack: CpiStack,
}

fn average_stack(config: UarchConfig, scale: tia_workloads::Scale) -> CpiStack {
    let stacks: Vec<CpiStack> = ALL_WORKLOADS
        .iter()
        .map(|&kind| run_uarch_workload(kind, config, scale).counters.cpi_stack())
        .collect();
    CpiStack::average(&stacks)
}

fn main() {
    let scale = scale_from_args();
    let mut t = Table::new(&[
        "microarchitecture",
        "CPI",
        "retired",
        "quashed",
        "pred. haz.",
        "data haz.",
        "forbidden",
        "no trig.",
    ]);
    let mut points: Vec<StackPoint> = Vec::new();
    println!("Figure 5: CPI stacks (average over the ten workloads).\n");
    for pipeline in Pipeline::ALL {
        let variants: &[UarchConfig] = if pipeline == Pipeline::TDX {
            &[UarchConfig::base(Pipeline::TDX)]
        } else {
            &[
                UarchConfig::base(pipeline),
                UarchConfig::with_p(pipeline),
                UarchConfig::with_pq(pipeline),
            ]
        };
        for config in variants {
            let s = average_stack(*config, scale);
            points.push(StackPoint {
                microarchitecture: config.to_string(),
                cpi: s.total(),
                stack: s,
            });
            t.row_owned(vec![
                config.to_string(),
                format!("{:.3}", s.total()),
                format!("{:.3}", s.retired),
                format!("{:.3}", s.quashed),
                format!("{:.3}", s.predicate_hazard),
                format!("{:.3}", s.data_hazard),
                format!("{:.3}", s.forbidden),
                format!("{:.3}", s.not_triggered),
            ]);
        }
    }
    print!("{}", t.render());
    println!();
    if let Some(path) = json_out_from_args() {
        write_json(&path, &points);
    }

    // The paper's headline: the two optimizations together reduce the
    // 4-stage pipeline's CPI by 35%.
    let base = average_stack(UarchConfig::base(Pipeline::T_D_X1_X2), scale).total();
    let pq = average_stack(UarchConfig::with_pq(Pipeline::T_D_X1_X2), scale).total();
    println!(
        "T|D|X1|X2 CPI: base {base:.3} -> +P+Q {pq:.3} ({:.0}% reduction; paper: 35%)",
        100.0 * (1.0 - pq / base)
    );
}
