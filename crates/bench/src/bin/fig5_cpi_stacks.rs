//! Regenerates **Figure 5**: CPI stacks of the seven pipelined
//! microarchitectures (plus single-cycle TDX) with the predicate
//! prediction (+P) and effective queue status (+Q) optimizations
//! selectively enabled, averaged over the ten workloads.

use serde::Serialize;
use tia_bench::{
    coarse_stack, json_out_from_args, run_uarch_workload, scale_from_args, write_json, Table,
};
use tia_core::{CpiStack, Pipeline, UarchConfig};
use tia_prof::{Leaf, LeafShares};
use tia_workloads::{WorkloadKind, ALL_WORKLOADS};

#[derive(Serialize)]
struct StackPoint {
    microarchitecture: String,
    cpi: f64,
    stack: CpiStack,
    /// Suite-averaged hierarchical cycle-stack shares (the profiler
    /// taxonomy, normalized to total cycles).
    cycle_stack: LeafShares,
    /// Dominant cycle-stack leaf of the averaged run.
    bottleneck: Leaf,
}

fn main() {
    let scale = scale_from_args();
    let mut configs: Vec<UarchConfig> = Vec::new();
    for pipeline in Pipeline::ALL {
        if pipeline == Pipeline::TDX {
            configs.push(UarchConfig::base(Pipeline::TDX));
        } else {
            configs.push(UarchConfig::base(pipeline));
            configs.push(UarchConfig::with_p(pipeline));
            configs.push(UarchConfig::with_pq(pipeline));
        }
    }

    // One simulation per (microarchitecture, workload) cell, fanned
    // across the worker pool; the ordered merge keeps the averages
    // bit-identical to the old nested serial loops.
    let cells: Vec<(UarchConfig, WorkloadKind)> = configs
        .iter()
        .flat_map(|&config| ALL_WORKLOADS.iter().map(move |&kind| (config, kind)))
        .collect();
    let stacks = tia_par::par_map(&cells, |&(config, kind)| {
        let run = run_uarch_workload(kind, config, scale);
        let coarse = coarse_stack(&run);
        (run.counters.cpi_stack(), coarse.shares(coarse.total()))
    });
    let averages: Vec<(CpiStack, LeafShares)> = stacks
        .chunks(ALL_WORKLOADS.len())
        .map(|chunk| {
            let cpi: Vec<CpiStack> = chunk.iter().map(|&(c, _)| c).collect();
            let shares: Vec<LeafShares> = chunk.iter().map(|&(_, s)| s).collect();
            (CpiStack::average(&cpi), LeafShares::average(&shares))
        })
        .collect();

    let mut t = Table::new(&[
        "microarchitecture",
        "CPI",
        "retired",
        "quashed",
        "pred. haz.",
        "data haz.",
        "forbidden",
        "no trig.",
        "bottleneck",
    ]);
    let mut points: Vec<StackPoint> = Vec::new();
    println!("Figure 5: CPI stacks (average over the ten workloads).\n");
    for (config, (s, shares)) in configs.iter().zip(&averages) {
        let bottleneck = shares.bottleneck();
        points.push(StackPoint {
            microarchitecture: config.to_string(),
            cpi: s.total(),
            stack: *s,
            cycle_stack: *shares,
            bottleneck,
        });
        t.row_owned(vec![
            config.to_string(),
            format!("{:.3}", s.total()),
            format!("{:.3}", s.retired),
            format!("{:.3}", s.quashed),
            format!("{:.3}", s.predicate_hazard),
            format!("{:.3}", s.data_hazard),
            format!("{:.3}", s.forbidden),
            format!("{:.3}", s.not_triggered),
            bottleneck.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!();
    if let Some(path) = json_out_from_args() {
        write_json(&path, &points);
    }

    // The paper's headline: the two optimizations together reduce the
    // 4-stage pipeline's CPI by 35%. Both configurations are already
    // in the table above.
    let total_of = |wanted: UarchConfig| -> f64 {
        let i = configs.iter().position(|&c| c == wanted).expect("in table");
        averages[i].0.total()
    };
    let base = total_of(UarchConfig::base(Pipeline::T_D_X1_X2));
    let pq = total_of(UarchConfig::with_pq(Pipeline::T_D_X1_X2));
    println!(
        "T|D|X1|X2 CPI: base {base:.3} -> +P+Q {pq:.3} ({:.0}% reduction; paper: 35%)",
        100.0 * (1.0 - pq / base)
    );
}
