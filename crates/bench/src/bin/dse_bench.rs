//! Measures serial vs parallel wall clock for the full `bst`-backed
//! design-space exploration and writes the numbers to `BENCH_dse.json`
//! (or the path given with `-o`), cross-checking that every parallel
//! run returns results bit-identical to the serial sweep. Also
//! A/B-times the fabric fast-forward engine (on vs off) over the same
//! sweep and records simulated-cycle throughput plus the engine's
//! effectiveness counters (cycles bulk-skipped, idle-horizon probe hit
//! rate) for every configuration.
//!
//! Also A/B-times the compiled trigger engine (`tia-jit`, on vs off)
//! over the same sweep, recording compiled vs interpreted throughput
//! per configuration, and reports per-worker scheduler utilization for
//! every parallel run.
//!
//! Finally, A/B-times the content-addressed measurement store
//! (`tia-store`) over the same sweep: a cold sweep that simulates and
//! persists every point versus a warm sweep answered entirely from
//! the store, with the warm results asserted bit-identical.
//!
//! ```text
//! cargo run --release -p tia-bench --bin dse_bench \
//!     [--test-scale] [--assert-fast-forward] [--assert-jit-speedup] \
//!     [--assert-store] [-o BENCH_dse.json]
//! ```
//!
//! `--assert-fast-forward` turns the recorded comparison into a gate:
//! the process exits nonzero unless the fast-forward sweep is
//! bit-identical to the baseline and no more than 10% slower (CI runs
//! this at test scale as a regression smoke test).
//! `--assert-jit-speedup` gates the compiled trigger engine the same
//! way: bit-identical and no more than 5% slower than the interpreter
//! (at test scale the engine's advantage is noise-bounded; the real
//! speedup is recorded at paper scale in `BENCH_dse.json`).
//! `--assert-store` gates the measurement store: the warm sweep must
//! simulate nothing, return bit-identical points, and not be slower
//! than the cold sweep.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use tia_bench::{activity_of, run_uarch_workload, scale_from_args, scale_label};
use tia_core::UarchConfig;
use tia_energy::dse::{explore, par_explore_stats_with, par_explore_with};
use tia_energy::{CheckpointedCpi, SweepContext};
use tia_workloads::WorkloadKind;

#[derive(serde::Serialize)]
struct ParallelRun {
    workers: usize,
    seconds: f64,
    speedup_vs_serial: f64,
    cycles_per_second: f64,
    /// Work-stealing claim granularity the scheduler chose.
    chunk: usize,
    /// Items (configurations) each worker executed.
    worker_items: Vec<usize>,
    /// Busy time over wall-clock time, per worker.
    worker_utilization: Vec<f64>,
    /// The least-utilized worker (the balance limiter).
    min_utilization: f64,
}

/// Fast-forward effectiveness for one configuration's activity run:
/// how many of its cycles were bulk-skipped and how often the
/// idle-horizon probe paid off.
#[derive(serde::Serialize)]
struct ConfigFastForward {
    config: String,
    cycles: u64,
    skipped_cycles: u64,
    skipped_fraction: f64,
    probes: u64,
    probe_hits: u64,
    probe_hit_rate: f64,
}

#[derive(serde::Serialize)]
struct FastForwardRun {
    enabled_seconds: f64,
    disabled_seconds: f64,
    speedup: f64,
    enabled_cycles_per_second: f64,
    disabled_cycles_per_second: f64,
    bit_identical: bool,
    /// Cycles bulk-skipped across the whole enabled sweep.
    total_skipped_cycles: u64,
    /// Probe hit rate across the whole enabled sweep.
    probe_hit_rate: f64,
    /// Per-configuration effectiveness, in sweep order.
    per_config: Vec<ConfigFastForward>,
}

/// Compiled-vs-interpreted throughput for one configuration's
/// activity run.
#[derive(serde::Serialize)]
struct ConfigJit {
    config: String,
    cycles: u64,
    compiled_seconds: f64,
    interpreted_seconds: f64,
    compiled_cycles_per_second: f64,
    interpreted_cycles_per_second: f64,
    speedup: f64,
}

#[derive(serde::Serialize)]
struct JitRun {
    enabled_seconds: f64,
    disabled_seconds: f64,
    speedup: f64,
    enabled_cycles_per_second: f64,
    disabled_cycles_per_second: f64,
    bit_identical: bool,
    /// Per-configuration compiled vs interpreted throughput, in sweep
    /// order.
    per_config: Vec<ConfigJit>,
}

/// Cold-vs-warm timing of the content-addressed measurement store
/// over the same sweep.
#[derive(serde::Serialize)]
struct StoreRun {
    /// Sweep over an empty store: every point simulated and persisted.
    cold_seconds: f64,
    /// Sweep over the store the cold sweep filled: every point
    /// answered by hash lookup, nothing simulated.
    warm_seconds: f64,
    speedup: f64,
    cold_simulated: u64,
    warm_lookups: u64,
    warm_simulated: u64,
    bit_identical: bool,
}

#[derive(serde::Serialize)]
struct Report {
    host_threads: usize,
    scale: String,
    design_points: usize,
    /// Cycles simulated by one full sweep (identical for every
    /// configuration below — that is what `bit_identical` asserts).
    simulated_cycles: u64,
    serial_seconds: f64,
    cycles_per_second: f64,
    parallel: Vec<ParallelRun>,
    fast_forward: FastForwardRun,
    jit: JitRun,
    store: StoreRun,
    bit_identical: bool,
    note: String,
}

fn main() {
    let scale = scale_from_args();
    let args: Vec<String> = std::env::args().collect();
    let assert_fast_forward = args.iter().any(|a| a == "--assert-fast-forward");
    let assert_jit_speedup = args.iter().any(|a| a == "--assert-jit-speedup");
    let assert_store = args.iter().any(|a| a == "--assert-store");
    let output = args
        .iter()
        .position(|a| a == "-o" || a == "--output")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_dse.json".to_string());
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // The bst activity source, instrumented to count simulated cycles
    // so the report can state throughput in cycles/s, not just
    // sweeps/s.
    let sim_cycles = AtomicU64::new(0);
    let ff_rows: Mutex<Vec<ConfigFastForward>> = Mutex::new(Vec::new());
    let source = |config: &UarchConfig| {
        let run = run_uarch_workload(WorkloadKind::Bst, *config, scale);
        sim_cycles.fetch_add(run.counters.cycles, Ordering::Relaxed);
        ff_rows
            .lock()
            .expect("no poisoned rows")
            .push(ConfigFastForward {
                config: config.to_string(),
                cycles: run.system_cycles,
                skipped_cycles: run.ff.skipped_cycles,
                skipped_fraction: run.ff.skipped_cycles as f64 / run.system_cycles.max(1) as f64,
                probes: run.ff.probes,
                probe_hits: run.ff.probe_hits,
                probe_hit_rate: run.ff.probe_hits as f64 / run.ff.probes.max(1) as f64,
            });
        activity_of(&run)
    };

    // Warm caches (page-in, allocator) before timing anything.
    let _ = par_explore_with(1, &source);
    sim_cycles.store(0, Ordering::Relaxed);

    let start = Instant::now();
    let mut measure = |config: &UarchConfig| source(config);
    let serial = explore(&mut measure);
    let serial_seconds = start.elapsed().as_secs_f64();
    // Every sweep below simulates exactly this many cycles (the runs
    // are asserted bit-identical), so count once and reuse.
    let simulated_cycles = sim_cycles.load(Ordering::Relaxed);

    let mut parallel = Vec::new();
    let mut bit_identical = true;
    for workers in [1usize, 2, 4] {
        let start = Instant::now();
        let (points, stats) = par_explore_stats_with(workers, &source);
        let seconds = start.elapsed().as_secs_f64();
        bit_identical &= points == serial;
        let worker_utilization = stats.utilization();
        let min_utilization = worker_utilization.iter().copied().fold(1.0, f64::min);
        parallel.push(ParallelRun {
            workers,
            seconds,
            speedup_vs_serial: serial_seconds / seconds,
            cycles_per_second: simulated_cycles as f64 / seconds,
            chunk: stats.chunk,
            worker_items: stats.items.clone(),
            worker_utilization,
            min_utilization,
        });
        eprintln!(
            "par_explore {workers}w: {seconds:.2}s ({:.2}x vs serial {serial_seconds:.2}s, \
             min worker utilization {min_utilization:.2})",
            serial_seconds / seconds
        );
    }

    // A/B the fast-forward engine over the serial sweep. `System`
    // reads TIA_FAST_FORWARD at construction, so flipping the
    // environment variable between sweeps retimes the same workloads
    // under the other engine.
    let prior = std::env::var("TIA_FAST_FORWARD").ok();
    std::env::set_var("TIA_FAST_FORWARD", "1");
    // Capture per-configuration effectiveness rows from exactly the
    // enabled sweep (earlier sweeps also pushed rows; discard them).
    ff_rows.lock().expect("no poisoned rows").clear();
    let start = Instant::now();
    let ff_on = explore(&mut measure);
    let enabled_seconds = start.elapsed().as_secs_f64();
    let per_config = std::mem::take(&mut *ff_rows.lock().expect("no poisoned rows"));
    std::env::set_var("TIA_FAST_FORWARD", "0");
    let start = Instant::now();
    let ff_off = explore(&mut measure);
    let disabled_seconds = start.elapsed().as_secs_f64();
    match prior {
        Some(value) => std::env::set_var("TIA_FAST_FORWARD", value),
        None => std::env::remove_var("TIA_FAST_FORWARD"),
    }
    let total_skipped_cycles: u64 = per_config.iter().map(|r| r.skipped_cycles).sum();
    let total_probes: u64 = per_config.iter().map(|r| r.probes).sum();
    let total_hits: u64 = per_config.iter().map(|r| r.probe_hits).sum();
    let fast_forward = FastForwardRun {
        enabled_seconds,
        disabled_seconds,
        speedup: disabled_seconds / enabled_seconds,
        enabled_cycles_per_second: simulated_cycles as f64 / enabled_seconds,
        disabled_cycles_per_second: simulated_cycles as f64 / disabled_seconds,
        bit_identical: ff_on == serial && ff_off == serial,
        total_skipped_cycles,
        probe_hit_rate: total_hits as f64 / total_probes.max(1) as f64,
        per_config,
    };
    eprintln!(
        "fast-forward on {enabled_seconds:.2}s vs off {disabled_seconds:.2}s \
         ({:.2}x, bit_identical = {}, {} cycles skipped, probe hit rate {:.2})",
        fast_forward.speedup,
        fast_forward.bit_identical,
        fast_forward.total_skipped_cycles,
        fast_forward.probe_hit_rate
    );
    bit_identical &= fast_forward.bit_identical;

    // A/B the compiled trigger engine (`tia-jit`) over the serial
    // sweep. PEs read TIA_JIT at construction and
    // `run_uarch_workload` builds fresh PEs per measurement, so
    // flipping the environment variable retimes the same workloads
    // under the other engine. Per-configuration wall clock is captured
    // inside the source so compiled vs interpreted throughput can be
    // compared config by config.
    let jit_times: Mutex<Vec<(String, u64, f64)>> = Mutex::new(Vec::new());
    let mut timed_measure = |config: &UarchConfig| {
        let start = Instant::now();
        let run = run_uarch_workload(WorkloadKind::Bst, *config, scale);
        jit_times.lock().expect("no poisoned times").push((
            config.to_string(),
            run.system_cycles,
            start.elapsed().as_secs_f64(),
        ));
        activity_of(&run)
    };
    let prior = std::env::var("TIA_JIT").ok();
    std::env::set_var("TIA_JIT", "1");
    let start = Instant::now();
    let jit_on = explore(&mut timed_measure);
    let jit_enabled_seconds = start.elapsed().as_secs_f64();
    let rows_on = std::mem::take(&mut *jit_times.lock().expect("no poisoned times"));
    std::env::set_var("TIA_JIT", "0");
    let start = Instant::now();
    let jit_off = explore(&mut timed_measure);
    let jit_disabled_seconds = start.elapsed().as_secs_f64();
    let rows_off = std::mem::take(&mut *jit_times.lock().expect("no poisoned times"));
    match prior {
        Some(value) => std::env::set_var("TIA_JIT", value),
        None => std::env::remove_var("TIA_JIT"),
    }
    let per_config: Vec<ConfigJit> = rows_on
        .into_iter()
        .zip(rows_off)
        .map(
            |((config, cycles, on_s), (config_off, cycles_off, off_s))| {
                assert_eq!(config, config_off, "sweep orders must match");
                assert_eq!(cycles, cycles_off, "simulated cycles must match");
                ConfigJit {
                    config,
                    cycles,
                    compiled_seconds: on_s,
                    interpreted_seconds: off_s,
                    compiled_cycles_per_second: cycles as f64 / on_s.max(f64::EPSILON),
                    interpreted_cycles_per_second: cycles as f64 / off_s.max(f64::EPSILON),
                    speedup: off_s / on_s.max(f64::EPSILON),
                }
            },
        )
        .collect();
    let jit = JitRun {
        enabled_seconds: jit_enabled_seconds,
        disabled_seconds: jit_disabled_seconds,
        speedup: jit_disabled_seconds / jit_enabled_seconds,
        enabled_cycles_per_second: simulated_cycles as f64 / jit_enabled_seconds,
        disabled_cycles_per_second: simulated_cycles as f64 / jit_disabled_seconds,
        bit_identical: jit_on == serial && jit_off == serial,
        per_config,
    };
    eprintln!(
        "jit on {jit_enabled_seconds:.2}s vs off {jit_disabled_seconds:.2}s \
         ({:.2}x, bit_identical = {})",
        jit.speedup, jit.bit_identical
    );
    bit_identical &= jit.bit_identical;

    // Cold vs warm A/B of the content-addressed measurement store
    // over the same serial sweep: the cold pass simulates and persists
    // every point, the warm pass reopens the file and answers every
    // point by canonical-hash lookup.
    let store_path =
        std::env::temp_dir().join(format!("tia-dse-bench-{}.store", std::process::id()));
    let _ = std::fs::remove_file(&store_path);
    let ctx = SweepContext::new("bst", scale_label(scale));
    let cold_src =
        CheckpointedCpi::resume(&source, &store_path, ctx.clone()).expect("open bench store");
    let start = Instant::now();
    let cold_points = par_explore_with(1, &cold_src);
    let cold_seconds = start.elapsed().as_secs_f64();
    let cold_simulated = cold_src.misses();
    drop(cold_src);
    let warm_src = CheckpointedCpi::resume(&source, &store_path, ctx).expect("reopen bench store");
    let start = Instant::now();
    let warm_points = par_explore_with(1, &warm_src);
    let warm_seconds = start.elapsed().as_secs_f64();
    let store = StoreRun {
        cold_seconds,
        warm_seconds,
        speedup: cold_seconds / warm_seconds.max(f64::EPSILON),
        cold_simulated,
        warm_lookups: warm_src.lookups(),
        warm_simulated: warm_src.misses(),
        bit_identical: cold_points == serial && warm_points == serial,
    };
    let _ = std::fs::remove_file(&store_path);
    eprintln!(
        "store cold {cold_seconds:.2}s vs warm {warm_seconds:.4}s \
         ({:.0}x, warm answered {} from store / simulated {}, bit_identical = {})",
        store.speedup, store.warm_lookups, store.warm_simulated, store.bit_identical
    );
    bit_identical &= store.bit_identical;

    let report = Report {
        host_threads,
        scale: format!("{scale:?}"),
        design_points: serial.len(),
        simulated_cycles,
        serial_seconds,
        cycles_per_second: simulated_cycles as f64 / serial_seconds,
        parallel,
        fast_forward,
        jit,
        store,
        bit_identical,
        note: "Speedups are bounded by the measuring host's core count \
               (host_threads); on a single-core host all worker counts \
               degenerate to serial throughput and the figures record \
               engine overhead, not scaling (worker_utilization shows \
               the scheduler's balance independently of core count). \
               The fast_forward block A/B-times the quiescence-aware \
               fast-forward engine, the jit block the compiled trigger \
               engine (tia-jit), and the store block the \
               content-addressed measurement store (tia-store, cold \
               fill vs fully warm lookups), over the identical serial \
               sweep."
            .to_string(),
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&output, json + "\n").expect("write report");
    eprintln!(
        "wrote {output} ({} design points, bit_identical = {})",
        serial.len(),
        report.bit_identical
    );
    assert!(
        report.bit_identical,
        "parallel or fast-forward exploration diverged from serial"
    );
    // Both timing gates carry a small absolute slack on top of the
    // relative margin: at test scale a whole sweep takes tens of
    // milliseconds, where scheduler jitter alone exceeds any
    // percentage bound. The slack is negligible at paper scale, so
    // the relative margin still governs real regressions.
    const GATE_SLACK_SECONDS: f64 = 0.05;
    if assert_fast_forward {
        assert!(
            report.fast_forward.enabled_seconds
                <= report.fast_forward.disabled_seconds * 1.10 + GATE_SLACK_SECONDS,
            "fast-forward run is more than 10% slower than the baseline \
             ({:.3}s vs {:.3}s)",
            report.fast_forward.enabled_seconds,
            report.fast_forward.disabled_seconds,
        );
    }
    if assert_jit_speedup {
        assert!(
            report.jit.bit_identical,
            "compiled trigger engine diverged from the interpreter"
        );
        assert!(
            report.jit.enabled_seconds <= report.jit.disabled_seconds * 1.05 + GATE_SLACK_SECONDS,
            "compiled trigger engine is more than 5% slower than the \
             interpreter ({:.3}s vs {:.3}s)",
            report.jit.enabled_seconds,
            report.jit.disabled_seconds,
        );
    }
    if assert_store {
        assert!(
            report.store.bit_identical,
            "store-backed sweeps diverged from the uncached serial sweep"
        );
        assert_eq!(
            report.store.warm_simulated, 0,
            "a warm store still had to simulate points"
        );
        assert!(
            report.store.warm_seconds <= report.store.cold_seconds + GATE_SLACK_SECONDS,
            "warm store sweep is slower than the cold fill \
             ({:.3}s vs {:.3}s)",
            report.store.warm_seconds,
            report.store.cold_seconds,
        );
    }
}
