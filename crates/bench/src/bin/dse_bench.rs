//! Measures serial vs parallel wall clock for the full `bst`-backed
//! design-space exploration and writes the numbers to `BENCH_dse.json`
//! (or the path given with `-o`), cross-checking that every parallel
//! run returns results bit-identical to the serial sweep.
//!
//! ```text
//! cargo run --release -p tia-bench --bin dse_bench [--test-scale] [-o BENCH_dse.json]
//! ```

use std::time::Instant;

use tia_bench::{bst_activity_source, scale_from_args};
use tia_core::UarchConfig;
use tia_energy::dse::{explore, par_explore_with};

#[derive(serde::Serialize)]
struct ParallelRun {
    workers: usize,
    seconds: f64,
    speedup_vs_serial: f64,
}

#[derive(serde::Serialize)]
struct Report {
    host_threads: usize,
    scale: String,
    design_points: usize,
    serial_seconds: f64,
    parallel: Vec<ParallelRun>,
    bit_identical: bool,
    note: String,
}

fn main() {
    let scale = scale_from_args();
    let output = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "-o" || a == "--output")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "BENCH_dse.json".to_string())
    };
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let source = bst_activity_source(scale);

    // Warm caches (page-in, allocator) before timing anything.
    let _ = par_explore_with(1, &source);

    let start = Instant::now();
    let mut measure = |config: &UarchConfig| source(config);
    let serial = explore(&mut measure);
    let serial_seconds = start.elapsed().as_secs_f64();

    let mut parallel = Vec::new();
    let mut bit_identical = true;
    for workers in [1usize, 2, 4] {
        let start = Instant::now();
        let points = par_explore_with(workers, &source);
        let seconds = start.elapsed().as_secs_f64();
        bit_identical &= points == serial;
        parallel.push(ParallelRun {
            workers,
            seconds,
            speedup_vs_serial: serial_seconds / seconds,
        });
        eprintln!(
            "par_explore {workers}w: {seconds:.2}s ({:.2}x vs serial {serial_seconds:.2}s)",
            serial_seconds / seconds
        );
    }

    let report = Report {
        host_threads,
        scale: format!("{scale:?}"),
        design_points: serial.len(),
        serial_seconds,
        parallel,
        bit_identical,
        note: "Speedups are bounded by the measuring host's core count \
               (host_threads); on a single-core host all worker counts \
               degenerate to serial throughput and the figures record \
               engine overhead, not scaling."
            .to_string(),
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&output, json + "\n").expect("write report");
    eprintln!(
        "wrote {output} ({} design points, bit_identical = {})",
        serial.len(),
        report.bit_identical
    );
    assert!(
        report.bit_identical,
        "parallel exploration diverged from serial"
    );
}
