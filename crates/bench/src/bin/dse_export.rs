//! Exports the full design-space exploration as JSON for external
//! plotting (the Figure 6/7/8 scatter data).
//!
//! ```text
//! cargo run --release -p tia-bench --bin dse_export \
//!     [--test-scale] [-o points.json] [--store store.bin] [--expect-warm]
//! ```
//!
//! With `--store PATH` (or the `TIA_STORE` environment variable),
//! every per-configuration activity measurement is keyed through the
//! content-addressed measurement store at `PATH`: finished points are
//! answered from the store, only points whose canonical input hash is
//! absent are simulated, and a warm re-run produces byte-identical
//! output while simulating nothing (see docs/performance.md). An
//! interrupted run resumes the same way — the store is append-only,
//! so whatever completed before the interrupt is never re-simulated.
//!
//! `--partial PATH` is the historical spelling of `--store PATH` and
//! still works; a pre-store JSON partial file found at `PATH` is moved
//! aside and regenerated, never trusted.
//!
//! `--expect-warm` turns the run into a cache-integrity gate: the
//! process exits nonzero if any point had to be simulated (CI runs a
//! sweep twice against one store and asserts the second run is fully
//! warm with byte-identical output).

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use tia_bench::{scale_from_args, store_path_from_args, sweep_through_store};
use tia_energy::pareto::pareto_frontier;

fn main() -> ExitCode {
    let scale = scale_from_args();
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |flags: &[&str]| {
        args.iter()
            .position(|a| flags.contains(&a.as_str()))
            .and_then(|i| args.get(i + 1).cloned())
    };
    let output = flag_value(&["-o", "--output"]);
    let expect_warm = args.iter().any(|a| a == "--expect-warm");
    // `--partial` predates the store and keeps working as an alias;
    // `store_path_from_args` handles `--store` and `TIA_STORE`.
    let store = flag_value(&["--partial"])
        .map(PathBuf::from)
        .or_else(store_path_from_args);

    let points = match &store {
        Some(path) => {
            let (points, _lookups, simulated) = sweep_through_store(scale, path);
            if expect_warm && simulated > 0 {
                eprintln!(
                    "dse_export: --expect-warm, but {simulated} point(s) were \
                     not in the store at {} and had to be simulated",
                    path.display()
                );
                return ExitCode::FAILURE;
            }
            points
        }
        None => {
            if expect_warm {
                eprintln!("dse_export: --expect-warm needs --store PATH (or TIA_STORE)");
                return ExitCode::FAILURE;
            }
            tia_bench::suite_design_points(scale)
        }
    };
    let frontier = pareto_frontier(&points);

    #[derive(serde::Serialize)]
    struct Export<'a> {
        points: &'a [tia_energy::DesignPoint],
        pareto_frontier: &'a [tia_energy::DesignPoint],
    }
    let json = serde_json::to_string_pretty(&Export {
        points: &points,
        pareto_frontier: &frontier,
    })
    .expect("design points serialize");

    match output {
        Some(path) => {
            fs::write(&path, &json).expect("write output file");
            eprintln!(
                "wrote {} design points ({} Pareto-optimal) to {path}",
                points.len(),
                frontier.len()
            );
        }
        None => println!("{json}"),
    }
    ExitCode::SUCCESS
}
