//! Exports the full design-space exploration as JSON for external
//! plotting (the Figure 6/7/8 scatter data).
//!
//! ```text
//! cargo run --release -p tia-bench --bin dse_export \
//!     [--test-scale] [-o points.json] [--partial partial.json]
//! ```
//!
//! With `--partial PATH`, every finished per-configuration activity
//! measurement is checkpointed to `PATH` as it completes; re-running
//! after an interrupt resumes from the file instead of re-simulating,
//! and produces byte-identical output (see docs/robustness.md).

use std::fs;
use std::process::ExitCode;

use tia_bench::{scale_from_args, suite_activity_source};
use tia_energy::checkpoint::CheckpointedCpi;
use tia_energy::dse::par_explore;
use tia_energy::pareto::pareto_frontier;

fn main() -> ExitCode {
    let scale = scale_from_args();
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |flags: &[&str]| {
        args.iter()
            .position(|a| flags.contains(&a.as_str()))
            .and_then(|i| args.get(i + 1).cloned())
    };
    let output = flag_value(&["-o", "--output"]);
    let partial = flag_value(&["--partial"]);

    let points = match partial {
        Some(path) => {
            let source = match CheckpointedCpi::resume(suite_activity_source(scale), &path) {
                Ok(source) => source,
                Err(e) => {
                    eprintln!("dse_export: cannot resume from {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if source.measured() > 0 {
                eprintln!(
                    "resuming: {} configuration(s) already measured in {path}",
                    source.measured()
                );
            }
            par_explore(&source)
        }
        None => par_explore(&suite_activity_source(scale)),
    };
    let frontier = pareto_frontier(&points);

    #[derive(serde::Serialize)]
    struct Export<'a> {
        points: &'a [tia_energy::DesignPoint],
        pareto_frontier: &'a [tia_energy::DesignPoint],
    }
    let json = serde_json::to_string_pretty(&Export {
        points: &points,
        pareto_frontier: &frontier,
    })
    .expect("design points serialize");

    match output {
        Some(path) => {
            fs::write(&path, &json).expect("write output file");
            eprintln!(
                "wrote {} design points ({} Pareto-optimal) to {path}",
                points.len(),
                frontier.len()
            );
        }
        None => println!("{json}"),
    }
    ExitCode::SUCCESS
}
