//! Exports the full design-space exploration as JSON for external
//! plotting (the Figure 6/7/8 scatter data).
//!
//! ```text
//! cargo run --release -p tia-bench --bin dse_export [--test-scale] [-o points.json]
//! ```

use std::fs;

use tia_bench::{scale_from_args, suite_activity_source};
use tia_energy::dse::par_explore;
use tia_energy::pareto::pareto_frontier;

fn main() {
    let scale = scale_from_args();
    let output = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "-o" || a == "--output")
            .and_then(|i| args.get(i + 1).cloned())
    };

    let points = par_explore(&suite_activity_source(scale));
    let frontier = pareto_frontier(&points);

    #[derive(serde::Serialize)]
    struct Export<'a> {
        points: &'a [tia_energy::DesignPoint],
        pareto_frontier: &'a [tia_energy::DesignPoint],
    }
    let json = serde_json::to_string_pretty(&Export {
        points: &points,
        pareto_frontier: &frontier,
    })
    .expect("design points serialize");

    match output {
        Some(path) => {
            fs::write(&path, &json).expect("write output file");
            eprintln!(
                "wrote {} design points ({} Pareto-optimal) to {path}",
                points.len(),
                frontier.len()
            );
        }
        None => println!("{json}"),
    }
}
