//! **Ablation: predictor design in the speculative predicate unit.**
//!
//! The paper fixes a two-bit saturating counter per predicate (§5.2);
//! this harness compares it against one-bit and static predictors on
//! the deepest pipeline, per workload.

use tia_bench::{run_uarch_workload, scale_from_args, Table};
use tia_core::{Pipeline, PredictorKind, UarchConfig};
use tia_workloads::ALL_WORKLOADS;

fn main() {
    let scale = scale_from_args();
    println!("Ablation: predicate predictor design (T|D|X1|X2 +P+Q).\n");
    let mut t = Table::new(&[
        "workload",
        "2-bit acc",
        "2-bit CPI",
        "1-bit acc",
        "1-bit CPI",
        "taken CPI",
        "not-taken CPI",
    ]);
    let mut avg = [0.0f64; 4];
    // All (workload, predictor) pairs are independent simulations.
    let pairs: Vec<(tia_workloads::WorkloadKind, PredictorKind)> = ALL_WORKLOADS
        .iter()
        .flat_map(|&kind| PredictorKind::ALL.iter().map(move |&p| (kind, p)))
        .collect();
    let counters = tia_par::par_map(&pairs, |&(kind, predictor)| {
        let config = UarchConfig::with_predictor(Pipeline::T_D_X1_X2, predictor);
        run_uarch_workload(kind, config, scale).counters
    });
    let predictors = PredictorKind::ALL.len();
    for (w, kind) in ALL_WORKLOADS.iter().enumerate() {
        let mut cells = vec![kind.name().to_string()];
        for i in 0..predictors {
            let c = counters[w * predictors + i];
            if i < 2 {
                let acc = c.prediction_accuracy();
                cells.push(if acc.is_nan() {
                    "-".to_string()
                } else {
                    format!("{:.0}%", 100.0 * acc)
                });
            }
            cells.push(format!("{:.3}", c.cpi()));
            avg[i] += c.cpi();
        }
        t.row_owned(cells);
    }
    print!("{}", t.render());
    println!();
    let n = ALL_WORKLOADS.len() as f64;
    println!(
        "suite-average CPI: 2-bit {:.3}, 1-bit {:.3}, always-taken {:.3}, always-not-taken {:.3}",
        avg[0] / n,
        avg[1] / n,
        avg[2] / n,
        avg[3] / n
    );
    println!("(the 2-bit counter's hysteresis is what tolerates the single");
    println!(" fall-through of long loops — the paper's best-case workloads)");
}
