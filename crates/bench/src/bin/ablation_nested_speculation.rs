//! **Ablation (§6 extension): nested speculation.**
//!
//! The paper: "Our initial exploration suggests that it would not be
//! terribly expensive to support nested speculation, and we would like
//! to examine the effect of this addition on decreasing the number of
//! forbidden instructions in deep pipelines." This harness examines
//! exactly that: CPI and the forbidden-instruction component across
//! speculation depths 1 (the paper's unit) through 4, on the three
//! deepest pipelines.

use tia_bench::{run_uarch_workload, scale_from_args, Table};
use tia_core::{CpiStack, Pipeline, UarchConfig};
use tia_workloads::{WorkloadKind, ALL_WORKLOADS};

fn main() {
    let scale = scale_from_args();
    println!("Ablation: speculation nesting depth (suite average).\n");
    let mut t = Table::new(&[
        "pipeline",
        "depth",
        "CPI",
        "forbidden",
        "quashed",
        "no trig.",
    ]);
    let mut variants: Vec<(Pipeline, u8)> = Vec::new();
    for pipeline in [Pipeline::T_DX1_X2, Pipeline::T_D_X, Pipeline::T_D_X1_X2] {
        for depth in 1..=4u8 {
            variants.push((pipeline, depth));
        }
    }
    // One simulation per (variant, workload) cell across the pool;
    // suite averages fall out of the ordered merge.
    let cells: Vec<((Pipeline, u8), WorkloadKind)> = variants
        .iter()
        .flat_map(|&v| ALL_WORKLOADS.iter().map(move |&k| (v, k)))
        .collect();
    let stacks = tia_par::par_map(&cells, |&((pipeline, depth), kind)| {
        let config = UarchConfig::with_nested(pipeline, depth);
        run_uarch_workload(kind, config, scale).counters.cpi_stack()
    });
    let averages: Vec<CpiStack> = stacks
        .chunks(ALL_WORKLOADS.len())
        .map(CpiStack::average)
        .collect();
    for (&(pipeline, depth), s) in variants.iter().zip(&averages) {
        t.row_owned(vec![
            pipeline.to_string(),
            depth.to_string(),
            format!("{:.3}", s.total()),
            format!("{:.3}", s.forbidden),
            format!("{:.3}", s.quashed),
            format!("{:.3}", s.not_triggered),
        ]);
    }
    print!("{}", t.render());
    println!();
    println!("(depth 1 = the paper's non-nested speculative predicate unit; deeper");
    println!(" entries implement the §6 extension. The paper predicts the forbidden");
    println!(" component shrinks with nesting, at the cost of deeper rollback state.)");
}
