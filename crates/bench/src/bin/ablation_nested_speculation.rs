//! **Ablation (§6 extension): nested speculation.**
//!
//! The paper: "Our initial exploration suggests that it would not be
//! terribly expensive to support nested speculation, and we would like
//! to examine the effect of this addition on decreasing the number of
//! forbidden instructions in deep pipelines." This harness examines
//! exactly that: CPI and the forbidden-instruction component across
//! speculation depths 1 (the paper's unit) through 4, on the three
//! deepest pipelines.

use tia_bench::{run_uarch_workload, scale_from_args, Table};
use tia_core::{CpiStack, Pipeline, UarchConfig};
use tia_workloads::{Scale, ALL_WORKLOADS};

fn average(config: UarchConfig, scale: Scale) -> CpiStack {
    let stacks: Vec<CpiStack> = ALL_WORKLOADS
        .iter()
        .map(|&k| run_uarch_workload(k, config, scale).counters.cpi_stack())
        .collect();
    CpiStack::average(&stacks)
}

fn main() {
    let scale = scale_from_args();
    println!("Ablation: speculation nesting depth (suite average).\n");
    let mut t = Table::new(&[
        "pipeline",
        "depth",
        "CPI",
        "forbidden",
        "quashed",
        "no trig.",
    ]);
    for pipeline in [Pipeline::T_DX1_X2, Pipeline::T_D_X, Pipeline::T_D_X1_X2] {
        for depth in 1..=4u8 {
            let config = UarchConfig::with_nested(pipeline, depth);
            let s = average(config, scale);
            t.row_owned(vec![
                pipeline.to_string(),
                depth.to_string(),
                format!("{:.3}", s.total()),
                format!("{:.3}", s.forbidden),
                format!("{:.3}", s.quashed),
                format!("{:.3}", s.not_triggered),
            ]);
        }
    }
    print!("{}", t.render());
    println!();
    println!("(depth 1 = the paper's non-nested speculative predicate unit; deeper");
    println!(" entries implement the §6 extension. The paper predicts the forbidden");
    println!(" component shrinks with nesting, at the cost of deeper rollback state.)");
}
