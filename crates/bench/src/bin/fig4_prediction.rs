//! Regenerates **Figure 4**: datapath predicate write frequency and
//! prediction accuracy per benchmark workload.
//!
//! Measured on the T|DX pipeline with both optimizations (the paper's
//! dominant balanced design); prediction accuracy is a property of the
//! predictor and the workload's branch structure, not of the pipeline
//! depth.

use serde::Serialize;
use tia_bench::{json_out_from_args, run_uarch_workload, scale_from_args, write_json, Table};
use tia_core::{Pipeline, UarchConfig};
use tia_workloads::ALL_WORKLOADS;

#[derive(Serialize)]
struct PredictionPoint {
    workload: String,
    predicate_write_frequency: f64,
    /// `None` when the workload makes no datapath predicate writes.
    prediction_accuracy: Option<f64>,
}

fn main() {
    let scale = scale_from_args();
    let config = UarchConfig::with_pq(Pipeline::T_DX);
    let mut t = Table::new(&["workload", "pred. write freq.", "prediction accuracy"]);
    let mut points: Vec<PredictionPoint> = Vec::new();
    let mut freq_sum = 0.0;
    let mut acc_sum = 0.0;
    let mut acc_count = 0usize;
    let runs = tia_par::par_map(&ALL_WORKLOADS, |&kind| {
        run_uarch_workload(kind, config, scale)
    });
    for run in &runs {
        let kind = run.kind;
        let c = run.counters;
        let freq = c.predicate_write_frequency();
        let acc = c.prediction_accuracy();
        points.push(PredictionPoint {
            workload: kind.name().to_string(),
            predicate_write_frequency: freq,
            prediction_accuracy: if acc.is_nan() { None } else { Some(acc) },
        });
        freq_sum += freq;
        let acc_text = if acc.is_nan() {
            "- (no predicate writes)".to_string()
        } else {
            acc_sum += acc;
            acc_count += 1;
            format!("{:.1}%", 100.0 * acc)
        };
        t.row_owned(vec![
            kind.name().to_string(),
            format!("{:.1}%", 100.0 * freq),
            acc_text,
        ]);
    }
    t.row_owned(vec![
        "average".to_string(),
        format!("{:.1}%", 100.0 * freq_sum / ALL_WORKLOADS.len() as f64),
        format!("{:.1}%", 100.0 * acc_sum / acc_count.max(1) as f64),
    ]);
    println!("Figure 4: predicate write frequency and prediction accuracy ({config}).");
    println!("(Paper: ~20% average write rate — 'almost exactly the rate of dynamic");
    println!(" branches found in standard single-threaded workloads such as SPEC';");
    println!(" filter and merge are the ~50% worst case; gcd, stream and mean are");
    println!(" near-perfect; dot_product makes no datapath predicate writes.)\n");
    print!("{}", t.render());
    if let Some(path) = json_out_from_args() {
        write_json(&path, &points);
    }
}
