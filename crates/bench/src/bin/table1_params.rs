//! Regenerates **Table 1**: architectural and microarchitectural
//! parameters.

use tia_bench::Table;
use tia_isa::{Params, NUM_DSTS, NUM_OPS, NUM_SRCS};

fn main() {
    let p = Params::default();
    let mut t = Table::new(&["Parameter", "Description", "Value"]);
    t.row_owned(vec![
        "NRegs".into(),
        "Number of registers".into(),
        p.num_regs.to_string(),
    ]);
    t.row_owned(vec![
        "NIQueues".into(),
        "Number of input queues".into(),
        p.num_input_queues.to_string(),
    ]);
    t.row_owned(vec![
        "NOQueues".into(),
        "Number of output queues".into(),
        p.num_output_queues.to_string(),
    ]);
    t.row_owned(vec![
        "MaxCheck".into(),
        "Max queues checked per trigger".into(),
        p.max_check.to_string(),
    ]);
    t.row_owned(vec![
        "MaxDeq".into(),
        "Max dequeues allowed / ins".into(),
        p.max_deq.to_string(),
    ]);
    t.row_owned(vec![
        "NPreds".into(),
        "Number of predicates".into(),
        p.num_preds.to_string(),
    ]);
    t.row_owned(vec![
        "Word".into(),
        "Word width".into(),
        p.word_width.to_string(),
    ]);
    t.row_owned(vec![
        "TagWidth".into(),
        "Queue tag width".into(),
        p.tag_width.to_string(),
    ]);
    t.row_owned(vec![
        "NIns".into(),
        "Number of instructions per PE".into(),
        p.num_instructions.to_string(),
    ]);
    t.row_owned(vec![
        "NOps*".into(),
        "Number of operations".into(),
        NUM_OPS.to_string(),
    ]);
    t.row_owned(vec![
        "NSrcs*".into(),
        "Number of source operands / ins".into(),
        NUM_SRCS.to_string(),
    ]);
    t.row_owned(vec![
        "NDsts*".into(),
        "Number of destinations / ins".into(),
        NUM_DSTS.to_string(),
    ]);
    println!("Table 1: architectural and microarchitectural parameters.");
    println!("(Starred entries are fixed by the ISA rather than the parameter file.)");
    println!("Note: the paper's table lists MaxCheck = 4, but its Table 2 widths and");
    println!("106-bit total require MaxCheck = 2, matching the prose; we use 2.\n");
    print!("{}", t.render());
}
