//! Regenerates the **§4 instruction-storage study**: register, latch
//! and mixed register/latch-SRAM instruction memories.

use tia_bench::Table;
use tia_energy::area_power::{Component, InstMemMedium, TDX_AREA_UM2, TDX_POWER_MW};

fn main() {
    let base_area = TDX_AREA_UM2 * Component::InstructionMemory.area_fraction();
    let base_power = TDX_POWER_MW * Component::InstructionMemory.power_fraction();

    let mut t = Table::new(&[
        "medium",
        "area µm²",
        "vs register",
        "power mW",
        "vs register",
        "trigger delay",
    ]);
    for (name, medium) in [
        ("clock-gated registers", InstMemMedium::Register),
        ("latches", InstMemMedium::Latch),
        ("mixed reg/latch-SRAM", InstMemMedium::MixedSram),
    ] {
        let (a, p, d) = medium.factors();
        t.row_owned(vec![
            name.to_string(),
            format!("{:.0}", base_area * a),
            format!("{:+.0}%", 100.0 * (a - 1.0)),
            format!("{:.3}", base_power * p),
            format!("{:+.0}%", 100.0 * (p - 1.0)),
            format!("{:.2}x", d),
        ]);
    }
    println!("§4: instruction storage media for the 16-entry combinational");
    println!("instruction memory (25% of PE area, 41% of PE power in the");
    println!("register-based single-cycle baseline).\n");
    print!("{}", t.render());
    println!();
    println!("paper: mixed storage saves 16% area / 24% power vs register-only and");
    println!("9% / 19% vs latch-only (CACTI-based); latches alone save >30% area and");
    println!("75% power but 'increased the critical path of the trigger resolver and");
    println!("the rate of failure in gate-level post-synthesis validation', so the");
    println!("paper (and this model) keeps clock-gated registers for all pipelines.");
}
