//! Regenerates **Figure 7**: the benefit of adding predicate
//! prediction (+P) and queue status accounting (+Q) at the Pareto
//! frontier of the energy-delay tradeoff, in the balanced region near
//! the origin (§5.4: "the addition of both ... improves the frontier
//! by 20-25% in both energy and delay").

use serde::Serialize;
use tia_bench::{json_out_from_args, scale_from_args, suite_design_points, write_json, Table};
use tia_energy::dse::DesignPoint;
use tia_energy::pareto::{frontier_energy_improvement, pareto_frontier};

#[derive(Serialize)]
struct FrontierPoint {
    design: String,
    vt: String,
    vdd: f64,
    freq_mhz: f64,
    ns_per_inst: f64,
    pj_per_inst: f64,
}

#[derive(Serialize)]
struct Frontier {
    features: String,
    energy_improvement: f64,
    points: Vec<FrontierPoint>,
}

fn frontier_points(frontier: &[DesignPoint]) -> Vec<FrontierPoint> {
    frontier
        .iter()
        .map(|p| FrontierPoint {
            design: p.config.pipeline.to_string(),
            vt: p.vt.to_string(),
            vdd: p.vdd,
            freq_mhz: p.freq_mhz,
            ns_per_inst: p.ns_per_inst,
            pj_per_inst: p.pj_per_inst,
        })
        .collect()
}

fn main() {
    let scale = scale_from_args();
    let points = suite_design_points(scale);

    // The balanced region of Figure 7: delays up to 10 ns/instruction.
    let balanced: Vec<DesignPoint> = points
        .iter()
        .copied()
        .filter(|p| p.ns_per_inst <= 10.0)
        .collect();

    let select = |p_on: bool, q_on: bool| -> Vec<DesignPoint> {
        pareto_frontier(
            &balanced
                .iter()
                .copied()
                .filter(|p| {
                    p.config.predicate_prediction == p_on && p.config.effective_queue_status == q_on
                })
                .collect::<Vec<_>>(),
        )
    };
    let none = select(false, false);
    let p_only = select(true, false);
    let q_only = select(false, true);
    let pq = select(true, true);

    println!("Figure 7: balanced-region (≤ 10 ns/inst) frontiers by feature setting.\n");
    for (name, frontier) in [
        ("None", &none),
        ("+P", &p_only),
        ("+Q", &q_only),
        ("+P+Q", &pq),
    ] {
        println!("{name} frontier:");
        let mut t = Table::new(&["design", "VT", "VDD", "MHz", "ns/inst", "pJ/inst"]);
        for p in frontier.iter() {
            t.row_owned(vec![
                p.config.pipeline.to_string(),
                p.vt.to_string(),
                format!("{:.1}", p.vdd),
                format!("{:.0}", p.freq_mhz),
                format!("{:.2}", p.ns_per_inst),
                format!("{:.2}", p.pj_per_inst),
            ]);
        }
        print!("{}", t.render());
        println!();
    }

    let optimized = pareto_frontier(
        &balanced
            .iter()
            .copied()
            .filter(|p| p.config.predicate_prediction || p.config.effective_queue_status)
            .collect::<Vec<_>>(),
    );
    println!("mean frontier energy improvement over the unoptimized frontier:");
    for (name, frontier) in [
        ("+P", &p_only),
        ("+Q", &q_only),
        ("+P+Q", &pq),
        ("best of +P/+Q/+P+Q", &optimized),
    ] {
        println!(
            "  {name:20} {:+.0}%",
            100.0 * frontier_energy_improvement(&none, frontier)
        );
    }
    println!("(paper: the optimizations improve the balanced frontier by 20-25% in both");
    println!(" energy and delay, with +Q alone optimal at the high-performance extreme)");

    if let Some(path) = json_out_from_args() {
        let frontiers: Vec<Frontier> = [
            ("None", &none),
            ("+P", &p_only),
            ("+Q", &q_only),
            ("+P+Q", &pq),
        ]
        .into_iter()
        .map(|(name, frontier)| Frontier {
            features: name.to_string(),
            energy_improvement: frontier_energy_improvement(&none, frontier),
            points: frontier_points(frontier),
        })
        .collect();
        write_json(&path, &frontiers);
    }
}
