//! Regenerates the **§5.4 overhead analysis**: area, power and timing
//! costs of the two optimizations on the deepest pipeline
//! (T|D|X1|X2 at 500 MHz / 1.0 V), against the WaveScalar-style
//! output-queue padding alternative.

use tia_bench::Table;
use tia_core::{Pipeline, UarchConfig};
use tia_energy::area_power::{
    base_area_um2, dynamic_energy_per_cycle_pj, reject_buffer_cost, DEEP_BASE_AREA_UM2,
    DEEP_BASE_POWER_MW,
};
use tia_energy::critical_path::critical_path_fo4;
use tia_energy::tech::{fo4_delay_ps, VtClass};

fn power_at_500mhz(config: &UarchConfig) -> f64 {
    dynamic_energy_per_cycle_pj(config) * 500.0 / 1e3 + 0.1
}

fn main() {
    let deep = Pipeline::T_D_X1_X2;
    let configs = [
        ("baseline", UarchConfig::base(deep)),
        ("+P", UarchConfig::with_p(deep)),
        ("+Q", UarchConfig::with_q(deep)),
        ("+P+Q", UarchConfig::with_pq(deep)),
    ];
    let base_area = base_area_um2(&configs[0].1);
    let base_power = power_at_500mhz(&configs[0].1);
    let base_fo4 = critical_path_fo4(&configs[0].1);

    println!("§5.4 overheads on T|D|X1|X2 at 500 MHz / 1.0 V / SVT.\n");
    let mut t = Table::new(&[
        "configuration",
        "area µm²",
        "Δ area",
        "power mW",
        "Δ power",
        "critical path FO4",
        "max MHz",
    ]);
    for (name, config) in configs {
        let area = base_area_um2(&config);
        let power = power_at_500mhz(&config);
        let fo4 = critical_path_fo4(&config);
        let fmax = 1e6 / (fo4 * fo4_delay_ps(1.0, VtClass::Standard));
        t.row_owned(vec![
            name.to_string(),
            format!("{area:.1}"),
            format!("{:+.1}%", 100.0 * (area / base_area - 1.0)),
            format!("{power:.3}"),
            format!("{:+.1}%", 100.0 * (power / base_power - 1.0)),
            format!("{fo4:.1}"),
            format!("{fmax:.0}"),
        ]);
    }
    let (pad_area, pad_power_factor) = reject_buffer_cost();
    t.row_owned(vec![
        "output-queue padding".to_string(),
        format!("{pad_area:.1}"),
        format!("{:+.1}%", 100.0 * (pad_area / DEEP_BASE_AREA_UM2 - 1.0)),
        format!("{:.3}", DEEP_BASE_POWER_MW * pad_power_factor),
        format!("{:+.1}%", 100.0 * (pad_power_factor - 1.0)),
        format!("{base_fo4:.1}"),
        "-".to_string(),
    ]);
    print!("{}", t.render());
    println!();
    println!("paper anchors: baseline 63,991.4 µm² / 2.852 mW; +P 64,278.4 µm² (+0.5%) /");
    println!("3.048 mW (+7%); +Q 64,131.8 µm² / no measurable power change; both");
    println!("64,895.4 µm² (+1.4%) / 3.077 mW (+8%); padding 72,439.4 µm² (+13%) /");
    println!("3.194 mW (+12%). Timing: 53.6 FO4 (1184 MHz) -> 64.3 FO4 with speculation.");
    println!("Each pipeline register adds 0.301 mW at 500 MHz / 1.0 V.");
}
