//! Regenerates **Figure 3**: area and power breakdown of the
//! single-cycle baseline PE (64,435 µm², 1.95 mW), plus the §4
//! front-end / back-end accounting.

use serde::Serialize;
use tia_bench::{json_out_from_args, write_json, Table};
use tia_energy::area_power::{Component, TDX_AREA_UM2, TDX_POWER_MW};

#[derive(Serialize)]
struct BreakdownPoint {
    component: String,
    end: String,
    area_fraction: f64,
    area_um2: f64,
    power_fraction: f64,
    power_mw: f64,
}

fn main() {
    let mut t = Table::new(&["component", "area %", "area µm²", "power %", "power mW"]);
    let mut points: Vec<BreakdownPoint> = Vec::new();
    for c in Component::ALL {
        points.push(BreakdownPoint {
            component: c.name().to_string(),
            end: c.end().to_string(),
            area_fraction: c.area_fraction(),
            area_um2: TDX_AREA_UM2 * c.area_fraction(),
            power_fraction: c.power_fraction(),
            power_mw: TDX_POWER_MW * c.power_fraction(),
        });
        t.row_owned(vec![
            c.name().to_string(),
            format!("{:.0}%", 100.0 * c.area_fraction()),
            format!("{:.0}", TDX_AREA_UM2 * c.area_fraction()),
            format!("{:.0}%", 100.0 * c.power_fraction()),
            format!("{:.3}", TDX_POWER_MW * c.power_fraction()),
        ]);
    }
    println!(
        "Figure 3: single-cycle PE breakdown (total {TDX_AREA_UM2} µm², {TDX_POWER_MW} mW).\n"
    );
    print!("{}", t.render());

    let split = |end: &str, f: fn(Component) -> f64| -> f64 {
        Component::ALL
            .iter()
            .filter(|c| c.end() == end)
            .map(|c| f(*c))
            .sum::<f64>()
    };
    println!();
    println!(
        "front end (Pred. Unit + Ins. Mem. + Scheduler): {:.0}% area, {:.0}% power (paper: 32% / 48%)",
        100.0 * split("front", Component::area_fraction),
        100.0 * split("front", Component::power_fraction),
    );
    println!(
        "back end (RegFile + ALU):                       {:.0}% area, {:.0}% power (paper: 46% / 23%)",
        100.0 * split("back", Component::area_fraction),
        100.0 * split("back", Component::power_fraction),
    );
    println!(
        "queues (neutral):                               {:.0}% area, {:.0}% power (paper: 18% / 22%)",
        100.0 * Component::Queues.area_fraction(),
        100.0 * Component::Queues.power_fraction(),
    );
    if let Some(path) = json_out_from_args() {
        write_json(&path, &points);
    }
}
