//! Regenerates **Figure 8**: parametric analysis of the
//! Pareto-optimal designs, including the §5.4 power-density
//! comparison against 65 nm CPUs and GPUs.

use tia_bench::{scale_from_args, suite_design_points, Table};
use tia_energy::pareto::{density_context, pareto_frontier, span};

fn main() {
    let scale = scale_from_args();
    let points = suite_design_points(scale);
    let frontier = pareto_frontier(&points);

    println!(
        "Figure 8: the {} Pareto-optimal designs of {} feasible points.\n",
        frontier.len(),
        points.len()
    );
    let mut t = Table::new(&[
        "design",
        "VT",
        "Vdd",
        "MHz",
        "ns/inst",
        "pJ/inst",
        "mW",
        "mm2",
        "mW/mm2",
        "ED (pJ*ns)",
    ]);
    for p in &frontier {
        t.row_owned(vec![
            p.config.to_string(),
            p.vt.to_string(),
            format!("{:.1}", p.vdd),
            format!("{:.0}", p.freq_mhz),
            format!("{:.2}", p.ns_per_inst),
            format!("{:.2}", p.pj_per_inst),
            format!("{:.2}", p.power_mw),
            format!("{:.4}", p.area_mm2),
            format!("{:.1}", p.power_density()),
            format!("{:.2}", p.ed_product()),
        ]);
    }
    print!("{}", t.render());

    let fastest = frontier.first().expect("non-empty frontier");
    let most_frugal = frontier.last().expect("non-empty frontier");
    let max_density = frontier
        .iter()
        .map(|p| p.power_density())
        .fold(0.0f64, f64::max);
    let (e_span, d_span) = span(&points);

    println!();
    println!(
        "highest performance: {} ({}, {:.1} V) at {:.2} ns/inst, {:.2} pJ/inst",
        fastest.config, fastest.vt, fastest.vdd, fastest.ns_per_inst, fastest.pj_per_inst
    );
    println!("  (paper: TDX1|X2 +Q, LVT, 1157 MHz: 1.37 ns/inst at 21.42 pJ/inst)");
    println!(
        "lowest energy:       {} ({}, {:.1} V) at {:.2} pJ/inst, {:.2} ns/inst",
        most_frugal.config,
        most_frugal.vt,
        most_frugal.vdd,
        most_frugal.pj_per_inst,
        most_frugal.ns_per_inst
    );
    println!("  (paper: the same TDX1|X2 +Q microarchitecture in HVT: 0.89 pJ/inst)");
    println!(
        "max frontier power density: {max_density:.1} mW/mm² (paper: 167.6); context: \
         65 nm CPU mean {} / max {}, GPU max {} mW/mm²",
        density_context::CPU_MEAN,
        density_context::CPU_MAX,
        density_context::GPU_MAX
    );
    println!("energy-delay span: {e_span:.0}x energy, {d_span:.0}x delay (paper: 71x / 225x)");
}
