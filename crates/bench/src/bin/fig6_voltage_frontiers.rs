//! Regenerates **Figure 6**: energy-delay frontiers for each supply
//! voltage in the design space, with `bst`-derived activity as in §3.

use tia_bench::{scale_from_args, suite_design_points, Table};
use tia_energy::dse::DesignPoint;
use tia_energy::pareto::{pareto_frontier, span};

fn main() {
    let scale = scale_from_args();
    let points = suite_design_points(scale);
    println!(
        "Figure 6: per-voltage energy-delay frontiers over {} feasible design points.\n",
        points.len()
    );

    let mut voltages: Vec<f64> = points.iter().map(|p| p.vdd).collect();
    voltages.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
    voltages.dedup();

    for vdd in voltages {
        let subset: Vec<DesignPoint> = points.iter().copied().filter(|p| p.vdd == vdd).collect();
        let frontier = pareto_frontier(&subset);
        println!(
            "VDD = {vdd:.1} V ({} points, {} on frontier):",
            subset.len(),
            frontier.len()
        );
        let mut t = Table::new(&["design", "VT", "MHz", "ns/inst", "pJ/inst"]);
        for p in &frontier {
            t.row_owned(vec![
                p.config.to_string(),
                p.vt.to_string(),
                format!("{:.0}", p.freq_mhz),
                format!("{:.2}", p.ns_per_inst),
                format!("{:.2}", p.pj_per_inst),
            ]);
        }
        print!("{}", t.render());
        println!();
    }

    let (e_span, d_span) = span(&points);
    println!("overall span: {e_span:.0}x in energy, {d_span:.0}x in delay (paper: 71x and 225x)");
}
