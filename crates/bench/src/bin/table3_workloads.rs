//! Regenerates **Table 3**: the ten PE-centric microbenchmarks, each
//! run to completion on the functional model and verified against its
//! golden results; reports the worker PE's dynamic instruction count
//! and cycle count (§3: "dynamic instruction counts vary from 20,003
//! for dot product to 411,540 for gcd. The total number of cycles ...
//! maxes out at approximately 700,000").

use tia_bench::{scale_from_args, Table};
use tia_isa::Params;
use tia_sim::FuncPe;
use tia_workloads::{WorkloadKind, ALL_WORKLOADS};

fn main() {
    let scale = scale_from_args();
    let params = Params::default();
    let mut t = Table::new(&[
        "workload",
        "PEs",
        "worker dynamic ins.",
        "worker cycles",
        "pred. writes",
        "result",
    ]);
    let mut sorted: Vec<WorkloadKind> = ALL_WORKLOADS.to_vec();
    sorted.sort_by_key(|w| w.name());
    // Each workload runs independently on the functional model; fan
    // them across the pool and emit rows in the sorted order.
    let rows = tia_par::par_map(&sorted, |&kind| {
        let mut factory = |p: &Params, prog| FuncPe::new(p, prog);
        let mut built = kind
            .build(&params, scale, &mut factory)
            .unwrap_or_else(|e| panic!("{kind}: {e}"));
        let outcome = built.run_to_completion();
        let c = built.system.pe(built.worker).counters();
        vec![
            kind.name().to_string(),
            kind.num_pes().to_string(),
            c.retired.to_string(),
            c.cycles.to_string(),
            format!("{:.1}%", 100.0 * c.predicate_write_frequency()),
            match outcome {
                Ok(()) => "verified".to_string(),
                Err(e) => format!("FAILED: {e}"),
            },
        ]
    });
    for row in rows {
        t.row_owned(row);
    }
    println!("Table 3: the PE-centric benchmark suite (functional model).\n");
    print!("{}", t.render());
    println!();
    for kind in ALL_WORKLOADS {
        println!("{:14} {}", kind.name(), kind.description());
    }
}
