//! Regenerates the **§1 pipelining tradeoff** illustration: "once a
//! pipeline has reduced the critical path of a circuit, additional
//! opportunity to trade energy and delay appears. One could maintain
//! nominal supply voltage and increase clock frequency, maintain the
//! original clock frequency and reduce supply voltage, or apply some
//! combination in the middle."
//!
//! Starting from the single-cycle TDX at its maximum nominal-voltage
//! frequency, this harness shows where pipelining's headroom can be
//! spent on the paper's best balanced pipeline (T|DX +P+Q).

use tia_bench::{scale_from_args, suite_activity_source, Table};
use tia_core::{Pipeline, UarchConfig};
use tia_energy::dse::evaluate;
use tia_energy::max_frequency_mhz;
use tia_energy::tech::VtClass;

fn main() {
    let scale = scale_from_args();
    let source = suite_activity_source(scale);
    let vt = VtClass::Standard;

    let baseline_config = UarchConfig::base(Pipeline::TDX);
    let config = UarchConfig::with_pq(Pipeline::T_DX);
    // The two suite measurements are independent; run them together.
    let measured = tia_par::par_map(&[baseline_config, config], &source);
    let (baseline_activity, activity) = (measured[0], measured[1]);

    let f_tdx = (max_frequency_mhz(&baseline_config, 1.0, vt) / 10.0).floor() * 10.0;
    let baseline = evaluate(&baseline_config, vt, 1.0, f_tdx, baseline_activity)
        .expect("baseline closes at its own fmax");

    let f_max = (max_frequency_mhz(&config, 1.0, vt) / 10.0).floor() * 10.0;

    let mut t = Table::new(&[
        "mode",
        "design",
        "Vdd",
        "MHz",
        "ns/inst",
        "pJ/inst",
        "delay vs TDX",
        "energy vs TDX",
    ]);
    let mut row = |mode: &str, design: &UarchConfig, vdd: f64, f: f64, a| {
        if let Some(p) = evaluate(design, vt, vdd, f, a) {
            t.row_owned(vec![
                mode.to_string(),
                design.to_string(),
                format!("{vdd:.2}"),
                format!("{f:.0}"),
                format!("{:.2}", p.ns_per_inst),
                format!("{:.2}", p.pj_per_inst),
                format!(
                    "{:+.0}%",
                    100.0 * (p.ns_per_inst / baseline.ns_per_inst - 1.0)
                ),
                format!(
                    "{:+.0}%",
                    100.0 * (p.pj_per_inst / baseline.pj_per_inst - 1.0)
                ),
            ]);
        }
    };

    row(
        "single-cycle reference",
        &baseline_config,
        1.0,
        f_tdx,
        baseline_activity,
    );
    // Mode 1: keep nominal VDD, raise the clock to the new limit.
    row("iso-VDD, max frequency", &config, 1.0, f_max, activity);
    // Mode 2: keep the single-cycle frequency, drop the voltage as far
    // as timing still closes.
    let mut vdd = 1.0;
    while vdd > 0.55 && max_frequency_mhz(&config, vdd - 0.05, vt) >= f_tdx {
        vdd -= 0.05;
    }
    row("iso-frequency, min VDD", &config, vdd, f_tdx, activity);
    // Mode 3: the middle — split the headroom.
    let f_mid = (f_tdx + f_max) / 2.0;
    let mut vdd_mid = 1.0;
    while vdd_mid > 0.55 && max_frequency_mhz(&config, vdd_mid - 0.05, vt) >= f_mid {
        vdd_mid -= 0.05;
    }
    row("combined", &config, vdd_mid, f_mid, activity);

    println!("§1 tradeoff modes: spending the pipeline's timing headroom.\n");
    print!("{}", t.render());
    println!();
    println!("(all SVT; the single-cycle reference runs at its own nominal-voltage");
    println!(" frequency limit. Pipelining buys either throughput at iso-VDD or");
    println!(" energy at iso-frequency — the §1 framing that motivates the paper's");
    println!(" joint microarchitecture x voltage design-space exploration.)");
}
