//! Golden-file test for the tracing pipeline on a real workload: a
//! short gcd run on the 4-stage +P+Q microarchitecture must produce a
//! Chrome trace that parses back with `serde_json` and carries issue
//! slices, stall slices, and per-PE track metadata — and running the
//! same workload untraced (`NullTracer`, the default) must leave every
//! performance counter bit-identical.

use std::sync::OnceLock;

use serde::Value;
use tia_core::{Pipeline, UarchConfig, UarchCounters, UarchPe};
use tia_isa::Params;
use tia_trace::{chrome, EventKind, NullTracer, RingTracer, TraceEvent};
use tia_workloads::{Scale, WorkloadKind};

type TracedRun = (Vec<TraceEvent>, Vec<(u16, String)>, UarchCounters);

/// The traced gcd run, executed once and shared by both tests (a
/// debug-build µarch run is slow enough to be worth caching).
fn traced_gcd() -> &'static TracedRun {
    static RUN: OnceLock<TracedRun> = OnceLock::new();
    RUN.get_or_init(run_traced_gcd)
}

fn run_traced_gcd() -> TracedRun {
    let params = Params::default();
    let config = UarchConfig::with_pq(Pipeline::T_D_X1_X2);
    let mut factory = |p: &Params, prog| {
        UarchPe::with_tracer(p, config, prog, RingTracer::with_default_capacity())
    };
    let mut built = WorkloadKind::Gcd
        .build(&params, Scale::Test, &mut factory)
        .expect("gcd builds");
    for i in 0..built.system.num_pes() {
        built.system.pe_mut(i).set_pe_id(i as u16);
    }
    built.run_to_completion().expect("gcd runs");
    built.verify().expect("gcd result verifies");

    let counters = *built.system.pe(built.worker).counters();
    let labels: Vec<(u16, String)> = (0..built.system.num_pes())
        .map(|i| (i as u16, format!("pe{i}")))
        .collect();
    let tracers: Vec<RingTracer> = (0..built.system.num_pes())
        .map(|i| built.system.pe(i).tracer().clone())
        .collect();
    (RingTracer::merge(tracers), labels, counters)
}

#[test]
fn gcd_chrome_trace_round_trips_with_issue_stall_and_track_metadata() {
    let (events, labels, _) = traced_gcd();
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Issue { .. })),
        "gcd run records at least one issue"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Stall { .. })),
        "gcd run records at least one stall"
    );

    let json = chrome::export(events, labels);
    let doc: Value = serde_json::from_str(&json).expect("chrome trace is valid JSON");
    let trace_events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");

    // One process_name metadata record per PE in the fabric.
    let process_names = trace_events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(Value::as_str) == Some("M")
                && e.get("name").and_then(Value::as_str) == Some("process_name")
        })
        .count();
    assert_eq!(process_names, labels.len());

    // Issue slices survive the round trip as "X" events with args.
    let issue_slices: Vec<&Value> = trace_events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(Value::as_str) == Some("X")
                && e.get("name")
                    .and_then(Value::as_str)
                    .is_some_and(|n| n.starts_with("issue "))
        })
        .collect();
    assert!(!issue_slices.is_empty(), "issue slices in the trace");
    assert!(issue_slices.iter().all(|e| {
        e.get("args")
            .and_then(|a| a.get("slot"))
            .and_then(Value::as_u64)
            .is_some()
    }));

    // Stall slices survive too (any of the four stall class names).
    assert!(
        trace_events.iter().any(|e| {
            e.get("ph").and_then(Value::as_str) == Some("X")
                && e.get("name").and_then(Value::as_str).is_some_and(|n| {
                    matches!(
                        n,
                        "pred_hazard" | "data_hazard" | "forbidden" | "not_triggered"
                    )
                })
        }),
        "stall slices in the trace"
    );
}

#[test]
fn null_tracer_counters_match_traced_run_bit_for_bit() {
    let (_, _, traced_counters) = traced_gcd().clone();

    let params = Params::default();
    let config = UarchConfig::with_pq(Pipeline::T_D_X1_X2);
    let mut factory = |p: &Params, prog| UarchPe::with_tracer(p, config, prog, NullTracer);
    let mut built = WorkloadKind::Gcd
        .build(&params, Scale::Test, &mut factory)
        .expect("gcd builds");
    built.run_to_completion().expect("gcd runs");

    assert_eq!(
        *built.system.pe(built.worker).counters(),
        traced_counters,
        "tracing must not perturb any performance counter"
    );
}
