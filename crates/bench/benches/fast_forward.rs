//! Criterion bench: the quiescence-aware fast-forward engine vs the
//! cycle-by-cycle loop on the two workload shapes it was built for,
//! plus a compute-dense control:
//!
//! * `idle_relay` — a relay PE whose host stream delivers one token
//!   every `period` cycles: almost every cycle is a provable stall,
//!   so the engine should collapse whole inter-arrival windows into
//!   one bulk skip.
//! * `memory_latency` — a PE consuming loads through a high-latency
//!   read port: the port's in-flight expiry bounds each skip, the
//!   wake-cycle arithmetic the engine must get exactly right.
//! * `compute_dense` — a PE retiring every cycle: nothing is ever
//!   skippable, so this variant prices the idle-horizon probe itself
//!   (the acceptance bound is < 5% overhead).

use criterion::{criterion_group, criterion_main, Criterion};
use tia_asm::assemble;
use tia_core::{Pipeline, UarchConfig, UarchPe};
use tia_fabric::{InputRef, Memory, OutputRef, ReadPort, StreamSink, StreamSource, System, Token};
use tia_isa::{Params, Program};

const RUN_CYCLES: u64 = 20_000;

fn uarch_program(source: &str, params: &Params) -> Program {
    assemble(source, params).expect("bench program assembles")
}

/// One relay PE fed by a rate-limited source: `tokens` tokens total,
/// one every `period` cycles of source backpressure (StreamSource
/// pushes whenever there is space, so small queue capacities plus a
/// short token list leave a long fully-idle tail).
fn idle_relay_system(params: &Params, config: UarchConfig) -> System<UarchPe> {
    let relay = uarch_program(
        "when %p == XXXXXXXX with %i0.0: mov %o0.0, %i0; deq %i0;",
        params,
    );
    let mut sys = System::new(Memory::new(0));
    let pe = sys.add_pe(UarchPe::new(params, config, relay).expect("PE builds"));
    let tokens: Vec<Token> = (0..16).map(Token::data).collect();
    let src = sys.add_source(StreamSource::new(2, tokens));
    let sink = sys.add_sink(StreamSink::new(2));
    sys.connect(
        OutputRef::Source { source: src },
        InputRef::Pe { pe, queue: 0 },
    )
    .unwrap();
    sys.connect(OutputRef::Pe { pe, queue: 0 }, InputRef::Sink { sink })
        .unwrap();
    sys
}

/// A PE summing loads delivered through a `latency`-cycle read port.
fn memory_latency_system(params: &Params, config: UarchConfig, latency: u32) -> System<UarchPe> {
    let consumer = uarch_program(
        "when %p == XXXXXXXX with %i0.0: add %r0, %r0, %i0; deq %i0;",
        params,
    );
    let mut sys = System::new(Memory::from_words((0..64).collect()));
    let pe = sys.add_pe(UarchPe::new(params, config, consumer).expect("PE builds"));
    let rp = sys.add_read_port(ReadPort::new(2, latency));
    let addrs: Vec<Token> = (0..32).map(|i| Token::data(i % 64)).collect();
    let src = sys.add_source(StreamSource::new(2, addrs));
    sys.connect(
        OutputRef::Source { source: src },
        InputRef::ReadAddr { port: rp },
    )
    .unwrap();
    sys.connect(
        OutputRef::ReadData { port: rp },
        InputRef::Pe { pe, queue: 0 },
    )
    .unwrap();
    sys
}

/// A self-sustaining compute loop that retires every cycle.
fn compute_dense_system(params: &Params, config: UarchConfig) -> System<UarchPe> {
    let spin = uarch_program(
        "when %p == XXXXXXX0: add %r0, %r0, 1; set %p = ZZZZZZZ1;\n\
         when %p == XXXXXXX1: ult %p2, %r0, 100000; set %p = ZZZZZZZ0;",
        params,
    );
    let mut sys = System::new(Memory::new(0));
    sys.add_pe(UarchPe::new(params, config, spin).expect("PE builds"));
    sys
}

type BuildSystem = Box<dyn Fn() -> System<UarchPe>>;

fn bench_fast_forward(c: &mut Criterion) {
    let params = Params::default();
    let config = UarchConfig::with_pq(Pipeline::T_DX);
    let scenarios: [(&str, BuildSystem); 3] = [
        ("idle_relay", {
            let params = params.clone();
            Box::new(move || idle_relay_system(&params, config))
        }),
        ("memory_latency", {
            let params = params.clone();
            Box::new(move || memory_latency_system(&params, config, 40))
        }),
        ("compute_dense", {
            let params = params.clone();
            Box::new(move || compute_dense_system(&params, config))
        }),
    ];
    for (scenario, build) in &scenarios {
        let mut group = c.benchmark_group(format!("fast_forward_{scenario}"));
        for (label, enabled) in [("on", true), ("off", false)] {
            group.bench_function(label, |b| {
                b.iter(|| {
                    let mut sys = build();
                    sys.set_fast_forward(enabled);
                    sys.run(RUN_CYCLES);
                    criterion::black_box(sys.cycle())
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fast_forward);
criterion_main!(benches);
