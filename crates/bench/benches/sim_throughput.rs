//! Criterion bench: functional-simulator throughput per workload.

use criterion::{criterion_group, criterion_main, Criterion};
use tia_isa::Params;
use tia_sim::FuncPe;
use tia_workloads::{Scale, WorkloadKind};

fn bench_workloads(c: &mut Criterion) {
    let params = Params::default();
    let mut group = c.benchmark_group("func_sim");
    for kind in [
        WorkloadKind::Gcd,
        WorkloadKind::DotProduct,
        WorkloadKind::Bst,
    ] {
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                let mut factory = |p: &Params, prog| FuncPe::new(p, prog);
                let mut built = kind
                    .build(&params, Scale::Test, &mut factory)
                    .expect("build");
                built.run_to_completion().expect("run");
                built.system.cycle()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_workloads);
criterion_main!(benches);
