//! Criterion bench: the A/B cost of the tracing layer.
//!
//! Two arms over the same gcd run on the 4-stage +P+Q pipeline:
//!
//! * `null_tracer` — `UarchPe<NullTracer>` (the default): every
//!   emission site folds away at compile time, so this arm must match
//!   the pre-tracing baseline.
//! * `ring_tracer` — `UarchPe<RingTracer>` recording the full event
//!   stream: the cost of observability when it is actually on.
//!
//! The acceptance bar for the tracing subsystem is `null_tracer`
//! within noise (< 2%) of a build with no tracing code at all; since
//! `NullTracer` *is* the default type parameter, any regression here
//! is a regression of the untraced simulator itself.

use criterion::{criterion_group, criterion_main, Criterion};
use tia_core::{Pipeline, UarchConfig, UarchPe};
use tia_isa::Params;
use tia_trace::{NullTracer, RingTracer};
use tia_workloads::{Scale, WorkloadKind};

fn bench_trace_overhead(c: &mut Criterion) {
    let params = Params::default();
    let config = UarchConfig::with_pq(Pipeline::T_D_X1_X2);
    let mut group = c.benchmark_group("trace_overhead");

    group.bench_function("null_tracer", |b| {
        b.iter(|| {
            let mut factory = |p: &Params, prog| UarchPe::with_tracer(p, config, prog, NullTracer);
            let mut built = WorkloadKind::Gcd
                .build(&params, Scale::Test, &mut factory)
                .expect("build");
            built.run_to_completion().expect("run");
            built.system.cycle()
        })
    });

    group.bench_function("ring_tracer", |b| {
        b.iter(|| {
            let mut factory = |p: &Params, prog| {
                UarchPe::with_tracer(p, config, prog, RingTracer::with_default_capacity())
            };
            let mut built = WorkloadKind::Gcd
                .build(&params, Scale::Test, &mut factory)
                .expect("build");
            built.run_to_completion().expect("run");
            built.system.cycle()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
