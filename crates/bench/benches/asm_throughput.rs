//! Criterion bench: assembler and binary encoder throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use tia_asm::{assemble, disassemble};
use tia_isa::{encoding, Params};

const SOURCE: &str = "\
    when %p == XXXX0000 with %i0.0, %i3.0: ult %p7, %i3, %i0; set %p = ZZZZ0001;
    when %p == XXXXXXX1 with %i1.!2: mov %o2.1, %i1; deq %i1;
    when %p == XXXXXX10: add %r3, %r3, 4095;
    when %p == 1XXXXXXX: halt;
    when %p == XXXXXXXX: nop; set %p = 1ZZZZZZZ;";

fn bench_asm(c: &mut Criterion) {
    let params = Params::default();
    c.bench_function("assemble", |b| {
        b.iter(|| assemble(SOURCE, &params).expect("assembles"))
    });
    let program = assemble(SOURCE, &params).expect("assembles");
    c.bench_function("disassemble", |b| b.iter(|| disassemble(&program, &params)));
    c.bench_function("encode_program", |b| {
        b.iter(|| program.to_images(&params).expect("encodes"))
    });
    let images = program.to_images(&params).expect("encodes");
    c.bench_function("decode_image", |b| {
        b.iter(|| encoding::decode(images[0], &params).expect("decodes"))
    });
}

criterion_group!(benches, bench_asm);
criterion_main!(benches);
