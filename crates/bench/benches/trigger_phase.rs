//! Criterion bench: trigger-stage cost per cycle as the static
//! program grows, with the slot-readiness cache on (`cached`) and off
//! (`full`), in the two steady states a fabric PE lives in:
//!
//! * `idle` — every slot waits on input-queue tokens that never
//!   arrive (the dominant state of a PE awaiting fabric traffic).
//!   Nothing issues, so queue state is provably unchanged between
//!   cycles and every slot's readiness is served from the cache; the
//!   `full` variant re-evaluates every queue condition every cycle.
//! * `busy` — one slot issues a perpetual counter every cycle while
//!   the rest are rejected on predicates alone. Predicate-keyed cache
//!   entries survive the issue traffic; this variant mostly checks
//!   the cache is not a tax when the PE is saturated.

use criterion::{criterion_group, criterion_main, Criterion};
use tia_asm::assemble;
use tia_core::{Pipeline, UarchConfig, UarchPe};
use tia_isa::Params;

const CYCLES_PER_ITER: u32 = 1024;

/// Every slot blocks on a tagged token that never arrives.
fn idle_source(slots: usize) -> String {
    let mut s = String::new();
    for i in 0..slots {
        let q = i % 4;
        s.push_str(&format!(
            "when %p == XXXXXXX0 with %i{q}.1: nop; deq %i{q};\n"
        ));
    }
    s
}

/// Slot 0 issues every cycle; the rest never pass the predicate check.
fn busy_source(slots: usize) -> String {
    let mut s = String::from("when %p == XXXXXXX0: add %r0, %r0, 1;\n");
    for _ in 1..slots {
        s.push_str("when %p == XXXXXXX1: nop;\n");
    }
    s
}

fn bench_trigger_phase(c: &mut Criterion) {
    let params = Params::default();
    let config = UarchConfig::with_pq(Pipeline::T_DX);
    for (scenario, source_of) in [
        ("idle", idle_source as fn(usize) -> String),
        ("busy", busy_source),
    ] {
        let mut group = c.benchmark_group(format!("trigger_phase_{scenario}"));
        for slots in [1usize, 2, 4, 8, 16] {
            let program = assemble(&source_of(slots), &params).expect("bench program assembles");
            for (label, cache) in [("cached", true), ("full", false)] {
                let mut pe = UarchPe::new(&params, config, program.clone()).expect("PE builds");
                pe.set_trigger_cache(cache);
                group.bench_function(format!("{slots}slots_{label}"), |b| {
                    b.iter(|| {
                        for _ in 0..CYCLES_PER_ITER {
                            pe.step_cycle();
                        }
                        pe.counters().cycles
                    })
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_trigger_phase);
criterion_main!(benches);
