//! Criterion bench: full design-space exploration and Pareto
//! extraction with a synthetic activity model (the real `bst`-backed
//! sweep is the fig6/7/8 binaries' job).

use criterion::{criterion_group, criterion_main, Criterion};
use tia_core::UarchConfig;
use tia_energy::dse::{explore, CpiMeasurement};
use tia_energy::pareto::pareto_frontier;

fn bench_dse(c: &mut Criterion) {
    let mut cpi = |config: &UarchConfig| CpiMeasurement {
        cpi: 1.0 + 0.25 * (config.pipeline.depth() as f64 - 1.0),
        issue_rate: 0.8,
        ..CpiMeasurement::default()
    };
    c.bench_function("explore_design_space", |b| b.iter(|| explore(&mut cpi)));
    let points = explore(&mut cpi);
    c.bench_function("pareto_frontier", |b| b.iter(|| pareto_frontier(&points)));
}

criterion_group!(benches, bench_dse);
criterion_main!(benches);
