//! Criterion bench: serial vs parallel design-space exploration with
//! the real `bst`-backed activity source (test scale), the workload
//! the paper uses for activity extraction. `par_1w` measures the
//! engine's overhead at one worker (it runs serially in-place);
//! `par_2w`/`par_4w` show scaling where cores are available.

use criterion::{criterion_group, criterion_main, Criterion};
use tia_bench::bst_activity_source;
use tia_core::UarchConfig;
use tia_energy::dse::{explore, par_explore_with};
use tia_workloads::Scale;

fn bench_dse_scaling(c: &mut Criterion) {
    let source = bst_activity_source(Scale::Test);
    let mut group = c.benchmark_group("dse_scaling");
    group.bench_function("serial", |b| {
        b.iter(|| {
            let mut measure = |config: &UarchConfig| source(config);
            explore(&mut measure)
        })
    });
    for workers in [1usize, 2, 4] {
        group.bench_function(format!("par_{workers}w"), |b| {
            b.iter(|| par_explore_with(workers, &source))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dse_scaling);
criterion_main!(benches);
