//! Criterion bench: cycle-level model throughput across pipeline
//! depths, quantifying the simulation cost of the microarchitectural
//! detail relative to the functional model.

use criterion::{criterion_group, criterion_main, Criterion};
use tia_core::{Pipeline, UarchConfig, UarchPe};
use tia_isa::Params;
use tia_workloads::{Scale, WorkloadKind};

fn bench_uarch(c: &mut Criterion) {
    let params = Params::default();
    let mut group = c.benchmark_group("uarch_sim");
    for config in [
        UarchConfig::base(Pipeline::TDX),
        UarchConfig::base(Pipeline::T_D_X1_X2),
        UarchConfig::with_pq(Pipeline::T_D_X1_X2),
    ] {
        group.bench_function(config.to_string(), |b| {
            b.iter(|| {
                let mut factory = |p: &Params, prog| UarchPe::new(p, config, prog);
                let mut built = WorkloadKind::Gcd
                    .build(&params, Scale::Test, &mut factory)
                    .expect("build");
                built.run_to_completion().expect("run");
                built.system.cycle()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_uarch);
criterion_main!(benches);
