//! The embedded keyed store: a single append-only log file plus an
//! in-memory index.
//!
//! Records are framed `marker ∥ key ∥ len ∥ payload ∥ digest`, where
//! the digest is the truncated SHA-256 of the record body. Opening a
//! store replays the log into a `HashMap`; a torn tail (the process
//! died mid-append) fails its frame or digest check, is dropped, and
//! the file is truncated back to the last whole record — every record
//! before it survives. Writes append under a sibling lock file, so
//! several sweep processes can share one store: the worst race is two
//! processes measuring the same point and appending two identical
//! records, which last-wins replay makes harmless (measurements are
//! deterministic values).

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::hash::{Hash, Sha256};

/// The 8-byte file magic (`TIASTOR` + layout revision digit).
pub const STORE_MAGIC: &[u8; 8] = b"TIASTOR1";

/// The log-file layout version this build reads and writes.
pub const STORE_FORMAT_VERSION: u32 = 1;

/// Header: magic ∥ format version ∥ schema version.
const HEADER_LEN: usize = 8 + 4 + 4;

/// Record framing marker, so replay can distinguish "clean EOF" from
/// "garbage where a record should start".
const RECORD_MARKER: u8 = 0xA5;

/// marker ∥ key ∥ payload length.
const RECORD_PREFIX_LEN: usize = 1 + 32 + 4;

/// Truncated record-body digest length.
const DIGEST_LEN: usize = 8;

/// A store failure.
#[derive(Debug)]
pub enum StoreError {
    /// File I/O failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying error message.
        message: String,
    },
    /// The file is a store, but written under a different schema
    /// version — its measurements describe other semantics and must
    /// not be trusted.
    Schema {
        /// The schema version recorded in the file.
        found: u32,
        /// The schema version the caller expects.
        expected: u32,
    },
    /// The file is a store of an incompatible layout revision.
    Format {
        /// The layout version recorded in the file.
        found: u32,
        /// The layout version this build supports.
        supported: u32,
    },
    /// The file exists but is not a store (wrong magic). JSON content
    /// is called out specially: it is a legacy `--partial` checkpoint
    /// from before the content-addressed store existed.
    NotAStore {
        /// The file involved.
        path: PathBuf,
        /// Whether the content looks like a legacy JSON partial file.
        legacy_json: bool,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, message } => {
                write!(f, "store I/O failed for {}: {message}", path.display())
            }
            StoreError::Schema { found, expected } => write!(
                f,
                "store was written under schema version {found}, expected {expected}; \
                 its measurements are stale"
            ),
            StoreError::Format { found, supported } => write!(
                f,
                "store layout version {found} is not supported (this build reads {supported})"
            ),
            StoreError::NotAStore { path, legacy_json } => {
                if *legacy_json {
                    write!(
                        f,
                        "{} is a legacy JSON partial checkpoint, not a measurement store",
                        path.display()
                    )
                } else {
                    write!(f, "{} is not a measurement store", path.display())
                }
            }
        }
    }
}

impl std::error::Error for StoreError {}

fn io_err(path: &Path, e: std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    }
}

/// Holds `<path>.lock` for the duration of one append, so concurrent
/// processes sharing the store never interleave record bytes. Created
/// with `O_EXCL`; a lock file older than [`LockFile::STALE_SECONDS`]
/// (a crashed holder) is stolen.
struct LockFile {
    path: PathBuf,
}

impl LockFile {
    const STALE_SECONDS: u64 = 10;

    fn acquire(store_path: &Path) -> Result<LockFile, StoreError> {
        let mut path = store_path.as_os_str().to_owned();
        path.push(".lock");
        let path = PathBuf::from(path);
        loop {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(_) => return Ok(LockFile { path }),
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let stale = std::fs::metadata(&path)
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|t| t.elapsed().ok())
                        .is_some_and(|age| age.as_secs() >= Self::STALE_SECONDS);
                    if stale {
                        let _ = std::fs::remove_file(&path);
                    } else {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                }
                Err(e) => return Err(io_err(&path, e)),
            }
        }
    }
}

impl Drop for LockFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Truncated digest over one record body.
fn record_digest(key: &Hash, payload: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(&key.0);
    h.update(&(payload.len() as u32).to_le_bytes());
    h.update(payload);
    let full = h.finalize();
    full.0[..DIGEST_LEN].try_into().expect("8 bytes")
}

struct Inner {
    file: File,
    index: HashMap<Hash, Vec<u8>>,
}

/// A content-addressed keyed store over one append-only log file.
pub struct Store {
    path: PathBuf,
    schema: u32,
    dropped_tail_bytes: u64,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("path", &self.path)
            .field("schema", &self.schema)
            .field("records", &self.len())
            .finish()
    }
}

impl Store {
    /// Opens (creating if absent) the store at `path`, expecting
    /// `schema` as the caller's measurement-schema version.
    ///
    /// Replays the log into memory; a torn or corrupt tail is dropped
    /// and the file truncated back to the last whole record (see
    /// [`Store::dropped_tail_bytes`]).
    ///
    /// # Errors
    ///
    /// * [`StoreError::Schema`] — the file was written under another
    ///   schema version; the caller decides whether to discard it.
    /// * [`StoreError::Format`] / [`StoreError::NotAStore`] — the file
    ///   is not a store this build can read.
    /// * [`StoreError::Io`] — file-system failure.
    pub fn open(path: impl Into<PathBuf>, schema: u32) -> Result<Store, StoreError> {
        let path = path.into();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).map_err(|e| io_err(&path, e))?;
            }
        }
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&path)
            .map_err(|e| io_err(&path, e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(|e| io_err(&path, e))?;

        if bytes.is_empty() {
            let mut header = Vec::with_capacity(HEADER_LEN);
            header.extend_from_slice(STORE_MAGIC);
            header.extend_from_slice(&STORE_FORMAT_VERSION.to_le_bytes());
            header.extend_from_slice(&schema.to_le_bytes());
            let _lock = LockFile::acquire(&path)?;
            file.write_all(&header).map_err(|e| io_err(&path, e))?;
            return Ok(Store {
                path,
                schema,
                dropped_tail_bytes: 0,
                inner: Mutex::new(Inner {
                    file,
                    index: HashMap::new(),
                }),
            });
        }

        if bytes.len() < HEADER_LEN || &bytes[..8] != STORE_MAGIC {
            return Err(StoreError::NotAStore {
                legacy_json: bytes.first().is_some_and(|b| *b == b'{'),
                path,
            });
        }
        let format = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if format != STORE_FORMAT_VERSION {
            return Err(StoreError::Format {
                found: format,
                supported: STORE_FORMAT_VERSION,
            });
        }
        let found_schema = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
        if found_schema != schema {
            return Err(StoreError::Schema {
                found: found_schema,
                expected: schema,
            });
        }

        // Replay whole records; stop at the first frame that does not
        // parse or verify (a torn append) and drop everything after.
        let mut index = HashMap::new();
        let mut at = HEADER_LEN;
        let mut valid_end = at;
        while at < bytes.len() {
            let Some(record_end) = parse_record(&bytes[at..], &mut index) else {
                break;
            };
            at += record_end;
            valid_end = at;
        }
        let dropped_tail_bytes = (bytes.len() - valid_end) as u64;
        if dropped_tail_bytes > 0 {
            file.set_len(valid_end as u64)
                .map_err(|e| io_err(&path, e))?;
        }
        Ok(Store {
            path,
            schema,
            dropped_tail_bytes,
            inner: Mutex::new(Inner { file, index }),
        })
    }

    /// The log file backing this store.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The measurement-schema version this store was opened under.
    pub fn schema(&self) -> u32 {
        self.schema
    }

    /// How many bytes of torn tail the open replay had to discard
    /// (0 for a cleanly written file).
    pub fn dropped_tail_bytes(&self) -> u64 {
        self.dropped_tail_bytes
    }

    /// Number of distinct keys in the store.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("no poisoned store").index.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks a key up, returning a copy of its payload.
    pub fn get(&self, key: &Hash) -> Option<Vec<u8>> {
        self.inner
            .lock()
            .expect("no poisoned store")
            .index
            .get(key)
            .cloned()
    }

    /// Whether the store holds `key`.
    pub fn contains(&self, key: &Hash) -> bool {
        self.inner
            .lock()
            .expect("no poisoned store")
            .index
            .contains_key(key)
    }

    /// Inserts (or overwrites) `key` → `payload`, appending one record
    /// to the log. A put of the payload already stored is a no-op.
    ///
    /// # Errors
    ///
    /// Fails only on file I/O; the in-memory index is updated first,
    /// so the running sweep keeps its measurement either way.
    pub fn put(&self, key: Hash, payload: &[u8]) -> Result<(), StoreError> {
        let mut inner = self.inner.lock().expect("no poisoned store");
        if inner.index.get(&key).is_some_and(|held| held == payload) {
            return Ok(());
        }
        inner.index.insert(key, payload.to_vec());
        let mut record = Vec::with_capacity(RECORD_PREFIX_LEN + payload.len() + DIGEST_LEN);
        record.push(RECORD_MARKER);
        record.extend_from_slice(&key.0);
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(payload);
        record.extend_from_slice(&record_digest(&key, payload));
        let _lock = LockFile::acquire(&self.path)?;
        inner
            .file
            .write_all(&record)
            .map_err(|e| io_err(&self.path, e))
    }
}

/// Parses one record at the head of `bytes`, inserting it into
/// `index`; returns the record's total length, or `None` when the
/// bytes do not form a whole, digest-verified record.
fn parse_record(bytes: &[u8], index: &mut HashMap<Hash, Vec<u8>>) -> Option<usize> {
    if bytes.len() < RECORD_PREFIX_LEN || bytes[0] != RECORD_MARKER {
        return None;
    }
    let key = Hash(bytes[1..33].try_into().expect("32 bytes"));
    let len = u32::from_le_bytes(bytes[33..37].try_into().expect("4 bytes")) as usize;
    let total = RECORD_PREFIX_LEN + len + DIGEST_LEN;
    if bytes.len() < total {
        return None;
    }
    let payload = &bytes[RECORD_PREFIX_LEN..RECORD_PREFIX_LEN + len];
    let digest = &bytes[RECORD_PREFIX_LEN + len..total];
    if digest != record_digest(&key, payload) {
        return None;
    }
    index.insert(key, payload.to_vec());
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::sha256;

    fn temp_store(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("tia-store-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn put_get_persist_roundtrip() {
        let path = temp_store("roundtrip.store");
        let store = Store::open(&path, 3).expect("open");
        let k1 = sha256(b"one");
        let k2 = sha256(b"two");
        store.put(k1, b"payload one").expect("put");
        store.put(k2, b"payload two").expect("put");
        assert_eq!(store.get(&k1).as_deref(), Some(b"payload one".as_ref()));
        drop(store);

        let back = Store::open(&path, 3).expect("reopen");
        assert_eq!(back.len(), 2);
        assert_eq!(back.dropped_tail_bytes(), 0);
        assert_eq!(back.get(&k2).as_deref(), Some(b"payload two".as_ref()));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let path = temp_store("schema.store");
        drop(Store::open(&path, 1).expect("open"));
        match Store::open(&path, 2) {
            Err(StoreError::Schema { found, expected }) => {
                assert_eq!((found, expected), (1, 2));
            }
            other => panic!("expected a schema error, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn legacy_json_is_detected() {
        let path = temp_store("legacy.json");
        std::fs::write(&path, "{\"format_version\": 1}").expect("write");
        match Store::open(&path, 1) {
            Err(StoreError::NotAStore { legacy_json, .. }) => assert!(legacy_json),
            other => panic!("expected NotAStore, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn last_write_wins_on_replay() {
        let path = temp_store("lastwins.store");
        let store = Store::open(&path, 1).expect("open");
        let k = sha256(b"key");
        store.put(k, b"old").expect("put");
        store.put(k, b"new").expect("put");
        drop(store);
        let back = Store::open(&path, 1).expect("reopen");
        assert_eq!(back.get(&k).as_deref(), Some(b"new".as_ref()));
        let _ = std::fs::remove_file(&path);
    }
}
