//! `tia-store` — the content-addressed measurement store.
//!
//! The design-space sweeps of this repository are memoized
//! computations: every measurement is a pure function of its inputs
//! (workload, ISA [`Params`](../tia_isa), microarchitecture
//! configuration, input scale). This crate supplies the substrate
//! that makes those measurements *durable* and *addressable by
//! content* rather than by however some serializer happened to format
//! the inputs:
//!
//! * [`canon`] — a canonical deterministic encoding of
//!   [`serde::Value`] trees: sorted object keys, integers normalized
//!   across the stub-serde `Int`/`UInt` arms, floats as normalized
//!   IEEE-754 bit patterns (no decimal formatting anywhere), and an
//!   explicit schema version folded into every hash. Two semantically
//!   equal inputs hash identically; any schema bump invalidates every
//!   old key at once.
//! * [`hash`] — a dependency-free FIPS 180-4 SHA-256 and the 256-bit
//!   [`Hash`] key type, stable across builds (unlike
//!   `std::hash::DefaultHasher`, which is documented to change).
//! * [`log`] — an embedded append-only keyed store: one log file plus
//!   an in-memory index, with per-record digests so a torn tail from
//!   a killed process is dropped on open while every earlier record
//!   survives, and a sibling lock file so concurrent sweep processes
//!   can share one store.
//!
//! Like `tia-par`, the crate is std-only (the `serde` dependency is
//! the workspace's vendored stub, used purely as the value data
//! model). Higher layers (`tia-energy::store`) define what goes into
//! a key; this crate only promises that equal content means equal
//! key and that what was stored comes back byte-identical.

pub mod canon;
pub mod hash;
pub mod log;

pub use canon::{
    canonical_bytes, canonical_f64_bits, canonical_hash, from_canonical_bytes, CanonError,
    DecodeError, CANON_VERSION,
};
pub use hash::{sha256, Hash, Sha256};
pub use log::{Store, StoreError, STORE_FORMAT_VERSION, STORE_MAGIC};
