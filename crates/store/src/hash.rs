//! Content hashing: a dependency-free SHA-256 and the 256-bit
//! [`Hash`] used as the store key.
//!
//! A content-addressed store lives or dies by its hash function being
//! *stable across builds*: `std::hash::DefaultHasher` is explicitly
//! unstable between releases, so the store carries its own FIPS 180-4
//! SHA-256 (checked against the NIST test vectors below). Collisions
//! are cryptographically negligible, so a key equality check never
//! needs to compare the encoded inputs themselves.

use std::fmt;

/// A 256-bit content hash — the identity of one canonical encoding.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Hash(pub [u8; 32]);

impl Hash {
    /// Renders the hash as 64 lowercase hex digits.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
            s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble"));
        }
        s
    }

    /// Parses 64 hex digits back into a hash.
    pub fn from_hex(text: &str) -> Option<Hash> {
        let bytes = text.as_bytes();
        if bytes.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for (i, pair) in bytes.chunks_exact(2).enumerate() {
            let hi = (pair[0] as char).to_digit(16)?;
            let lo = (pair[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Hash(out))
    }
}

impl fmt::Display for Hash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl fmt::Debug for Hash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Hash({})", self.to_hex())
    }
}

/// SHA-256 round constants (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// An incremental SHA-256 computation.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes fed so far (the padded length field needs it in bits).
    length: u64,
    /// Partially filled message block.
    block: [u8; 64],
    block_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

impl Sha256 {
    /// A fresh hash computation.
    pub fn new() -> Self {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            length: 0,
            block: [0u8; 64],
            block_len: 0,
        }
    }

    /// Feeds `data` into the hash.
    pub fn update(&mut self, data: &[u8]) {
        self.length = self.length.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.block_len > 0 {
            let take = rest.len().min(64 - self.block_len);
            self.block[self.block_len..self.block_len + take].copy_from_slice(&rest[..take]);
            self.block_len += take;
            rest = &rest[take..];
            if self.block_len < 64 {
                // `rest` is empty (the take was everything); returning
                // here keeps the partial block intact — falling through
                // would clobber `block_len` with the empty remainder.
                return;
            }
            let block = self.block;
            self.compress(&block);
            self.block_len = 0;
        }
        let mut chunks = rest.chunks_exact(64);
        for chunk in &mut chunks {
            let mut block = [0u8; 64];
            block.copy_from_slice(chunk);
            self.compress(&block);
        }
        let tail = chunks.remainder();
        self.block[..tail.len()].copy_from_slice(tail);
        self.block_len = tail.len();
    }

    /// Completes the computation and returns the digest.
    pub fn finalize(mut self) -> Hash {
        let bit_length = self.length.wrapping_mul(8);
        self.update(&[0x80]);
        while self.block_len != 56 {
            self.update(&[0]);
        }
        // The length update above must not count the padding we just
        // fed, but `length` is only read once here, so it is moot.
        let mut block = self.block;
        block[56..64].copy_from_slice(&bit_length.to_be_bytes());
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Hash(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        let prior = self.state;
        self.state = [
            prior[0].wrapping_add(a),
            prior[1].wrapping_add(b),
            prior[2].wrapping_add(c),
            prior[3].wrapping_add(d),
            prior[4].wrapping_add(e),
            prior[5].wrapping_add(f),
            prior[6].wrapping_add(g),
            prior[7].wrapping_add(h),
        ];
    }
}

/// Hashes one contiguous buffer.
pub fn sha256(data: &[u8]) -> Hash {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nist_test_vectors() {
        // FIPS 180-4 / NIST CAVP reference digests.
        assert_eq!(
            sha256(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        let million_a = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256(&million_a).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_update_matches_one_shot() {
        let data: Vec<u8> = (0u16..1000).map(|i| (i % 251) as u8).collect();
        let one_shot = sha256(&data);
        for split in [0, 1, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), one_shot, "split at {split}");
        }
    }

    #[test]
    fn hex_roundtrip() {
        let h = sha256(b"roundtrip");
        assert_eq!(Hash::from_hex(&h.to_hex()), Some(h));
        assert_eq!(Hash::from_hex("zz"), None);
        assert_eq!(Hash::from_hex(&"0".repeat(63)), None);
    }
}
