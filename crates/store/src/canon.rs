//! Canonical deterministic encoding of [`serde::Value`] trees.
//!
//! Two semantically equal inputs must hash identically no matter how
//! they were produced: a JSON pretty-printer's float formatting, a
//! struct definition's field order, or an `Int`-vs-`UInt` choice for
//! the same non-negative number must never change a store key. The
//! encoding therefore:
//!
//! * writes object entries **sorted by key** (byte order), rejecting
//!   duplicate keys outright;
//! * writes floats as their **IEEE-754 bit pattern** (no decimal
//!   formatting anywhere), normalizing `-0.0` to `+0.0` and every NaN
//!   to the one canonical quiet-NaN pattern — `±∞` keep their own
//!   patterns, so all non-finite inputs are *normalized, not
//!   rejected*, deterministically;
//! * normalizes non-negative `Int`s to the `UInt` representation, so
//!   the two stub-`serde` integer arms cannot alias;
//! * prefixes every hash with a magic string, the encoding's own
//!   format version and the caller's **schema version**, so either
//!   kind of schema change invalidates every old key at once.

use serde::Value;

use crate::hash::{Hash, Sha256};

/// The canonical-encoding format version, mixed into every hash.
/// Bump on *any* change to the byte layout below.
pub const CANON_VERSION: u32 = 1;

/// Domain-separation prefix so canonical hashes can never collide
/// with hashes of raw byte strings taken elsewhere.
const CANON_MAGIC: &[u8; 10] = b"tia-canon\0";

/// A value that cannot be canonically encoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CanonError {
    /// An object holds the same key twice; sorting cannot order the
    /// two entries deterministically, so the value is rejected.
    DuplicateKey(String),
}

impl std::fmt::Display for CanonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CanonError::DuplicateKey(key) => {
                write!(f, "object key `{key}` appears more than once")
            }
        }
    }
}

impl std::error::Error for CanonError {}

/// One-byte type tags of the canonical byte layout.
mod tag {
    pub const NULL: u8 = 0x00;
    pub const FALSE: u8 = 0x01;
    pub const TRUE: u8 = 0x02;
    pub const UINT: u8 = 0x03;
    pub const NEG_INT: u8 = 0x04;
    pub const FLOAT: u8 = 0x05;
    pub const STRING: u8 = 0x06;
    pub const ARRAY: u8 = 0x07;
    pub const OBJECT: u8 = 0x08;
}

/// The one bit pattern every NaN input normalizes to (the standard
/// quiet NaN, sign cleared).
const CANONICAL_NAN_BITS: u64 = 0x7ff8_0000_0000_0000;

/// Normalizes a float to the bit pattern the encoding commits to:
/// `-0.0` becomes `+0.0` and every NaN payload collapses to
/// [`CANONICAL_NAN_BITS`]. Infinities and ordinary numbers keep their
/// exact bits.
pub fn canonical_f64_bits(value: f64) -> u64 {
    if value.is_nan() {
        CANONICAL_NAN_BITS
    } else if value == 0.0 {
        0 // +0.0; the comparison is true for -0.0 too.
    } else {
        value.to_bits()
    }
}

fn encode_into(value: &Value, out: &mut Vec<u8>) -> Result<(), CanonError> {
    match value {
        Value::Null => out.push(tag::NULL),
        Value::Bool(false) => out.push(tag::FALSE),
        Value::Bool(true) => out.push(tag::TRUE),
        Value::UInt(u) => {
            out.push(tag::UINT);
            out.extend_from_slice(&u.to_le_bytes());
        }
        Value::Int(i) => {
            // Non-negative integers normalize to the UInt arm so the
            // producer's choice of integer constructor cannot alias.
            if *i >= 0 {
                out.push(tag::UINT);
                out.extend_from_slice(&(*i as u64).to_le_bytes());
            } else {
                out.push(tag::NEG_INT);
                out.extend_from_slice(&i.to_le_bytes());
            }
        }
        Value::Float(f) => {
            out.push(tag::FLOAT);
            out.extend_from_slice(&canonical_f64_bits(*f).to_le_bytes());
        }
        Value::String(s) => {
            out.push(tag::STRING);
            out.extend_from_slice(&(s.len() as u64).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Array(items) => {
            out.push(tag::ARRAY);
            out.extend_from_slice(&(items.len() as u64).to_le_bytes());
            for item in items {
                encode_into(item, out)?;
            }
        }
        Value::Object(entries) => {
            out.push(tag::OBJECT);
            out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
            let mut order: Vec<usize> = (0..entries.len()).collect();
            order.sort_by(|&a, &b| entries[a].0.cmp(&entries[b].0));
            for pair in order.windows(2) {
                if entries[pair[0]].0 == entries[pair[1]].0 {
                    return Err(CanonError::DuplicateKey(entries[pair[0]].0.clone()));
                }
            }
            for i in order {
                let (key, item) = &entries[i];
                out.extend_from_slice(&(key.len() as u64).to_le_bytes());
                out.extend_from_slice(key.as_bytes());
                encode_into(item, out)?;
            }
        }
    }
    Ok(())
}

/// Encodes a value into its canonical byte string.
///
/// # Errors
///
/// Rejects objects with duplicate keys ([`CanonError::DuplicateKey`]).
pub fn canonical_bytes(value: &Value) -> Result<Vec<u8>, CanonError> {
    let mut out = Vec::new();
    encode_into(value, &mut out)?;
    Ok(out)
}

/// Hashes a value under a caller-declared schema version: the digest
/// covers `CANON_MAGIC ∥ CANON_VERSION ∥ schema ∥ canonical_bytes`, so
/// bumping either version invalidates every previously derived key.
///
/// # Errors
///
/// Rejects values [`canonical_bytes`] rejects.
pub fn canonical_hash(schema: u32, value: &Value) -> Result<Hash, CanonError> {
    let mut h = Sha256::new();
    h.update(CANON_MAGIC);
    h.update(&CANON_VERSION.to_le_bytes());
    h.update(&schema.to_le_bytes());
    h.update(&canonical_bytes(value)?);
    Ok(h.finalize())
}

/// A malformed canonical byte string (truncated, bad tag, trailing
/// garbage, or invalid UTF-8 in a string).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed canonical encoding: {}", self.message)
    }
}

impl std::error::Error for DecodeError {}

fn bad(message: impl Into<String>) -> DecodeError {
    DecodeError {
        message: message.into(),
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| bad("truncated"))?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let raw = self.take(8)?;
        Ok(u64::from_le_bytes(raw.try_into().expect("8 bytes")))
    }

    fn len(&mut self) -> Result<usize, DecodeError> {
        let n = self.u64()?;
        // A length can never exceed the bytes that remain; checking
        // here keeps a corrupt record from requesting a huge
        // allocation before `take` notices.
        if n > (self.bytes.len() - self.at) as u64 {
            return Err(bad("length exceeds remaining input"));
        }
        Ok(n as usize)
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let n = self.len()?;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| bad("invalid UTF-8"))
    }

    fn value(&mut self) -> Result<Value, DecodeError> {
        match self.u8()? {
            tag::NULL => Ok(Value::Null),
            tag::FALSE => Ok(Value::Bool(false)),
            tag::TRUE => Ok(Value::Bool(true)),
            tag::UINT => Ok(Value::UInt(self.u64()?)),
            tag::NEG_INT => {
                let raw = self.take(8)?;
                Ok(Value::Int(i64::from_le_bytes(
                    raw.try_into().expect("8 bytes"),
                )))
            }
            tag::FLOAT => Ok(Value::Float(f64::from_bits(self.u64()?))),
            tag::STRING => Ok(Value::String(self.string()?)),
            tag::ARRAY => {
                let n = self.len()?;
                let mut items = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    items.push(self.value()?);
                }
                Ok(Value::Array(items))
            }
            tag::OBJECT => {
                let n = self.len()?;
                let mut entries = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let key = self.string()?;
                    let item = self.value()?;
                    entries.push((key, item));
                }
                Ok(Value::Object(entries))
            }
            other => Err(bad(format!("unknown type tag 0x{other:02x}"))),
        }
    }
}

/// Decodes a canonical byte string back into a [`Value`].
///
/// Round trip: for any encodable `v`,
/// `from_canonical_bytes(&canonical_bytes(v)?)` returns `v` up to the
/// documented normalizations (sorted object keys, `Int`→`UInt`,
/// `-0.0`/NaN bit patterns) — and is *exactly* the identity on values
/// already in canonical form, floats included, because floats travel
/// as raw bit patterns.
///
/// # Errors
///
/// Rejects truncated input, unknown tags, trailing bytes and invalid
/// UTF-8.
pub fn from_canonical_bytes(bytes: &[u8]) -> Result<Value, DecodeError> {
    let mut reader = Reader { bytes, at: 0 };
    let value = reader.value()?;
    if reader.at != bytes.len() {
        return Err(bad("trailing bytes after value"));
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(entries: &[(&str, Value)]) -> Value {
        Value::Object(
            entries
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        )
    }

    #[test]
    fn key_order_does_not_change_the_hash() {
        let a = obj(&[("x", Value::UInt(1)), ("y", Value::Float(2.5))]);
        let b = obj(&[("y", Value::Float(2.5)), ("x", Value::UInt(1))]);
        assert_eq!(
            canonical_hash(0, &a).unwrap(),
            canonical_hash(0, &b).unwrap()
        );
        assert_ne!(
            canonical_hash(0, &a).unwrap(),
            canonical_hash(1, &a).unwrap(),
            "schema version is part of the key"
        );
    }

    #[test]
    fn int_uint_and_float_normalization() {
        assert_eq!(
            canonical_bytes(&Value::Int(7)).unwrap(),
            canonical_bytes(&Value::UInt(7)).unwrap()
        );
        assert_ne!(
            canonical_bytes(&Value::UInt(7)).unwrap(),
            canonical_bytes(&Value::Float(7.0)).unwrap(),
            "floats stay a distinct type"
        );
        assert_eq!(
            canonical_bytes(&Value::Float(-0.0)).unwrap(),
            canonical_bytes(&Value::Float(0.0)).unwrap()
        );
        let quiet = f64::NAN;
        let weird = f64::from_bits(0xfff8_dead_beef_0001);
        assert!(weird.is_nan());
        assert_eq!(
            canonical_bytes(&Value::Float(quiet)).unwrap(),
            canonical_bytes(&Value::Float(weird)).unwrap()
        );
        assert_ne!(
            canonical_bytes(&Value::Float(f64::INFINITY)).unwrap(),
            canonical_bytes(&Value::Float(f64::NEG_INFINITY)).unwrap()
        );
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let dup = obj(&[("k", Value::Null), ("k", Value::Bool(true))]);
        assert_eq!(
            canonical_bytes(&dup),
            Err(CanonError::DuplicateKey("k".to_string()))
        );
    }

    #[test]
    fn decode_inverts_encode() {
        let value = obj(&[
            ("a", Value::Array(vec![Value::Null, Value::Int(-3)])),
            ("b", Value::String("häße".to_string())),
            ("c", Value::Float(1.0 / 3.0)),
        ]);
        let bytes = canonical_bytes(&value).unwrap();
        let back = from_canonical_bytes(&bytes).unwrap();
        // Canonical form: keys already sorted, Int(-3) stays Int.
        assert_eq!(back, value);
        assert_eq!(canonical_bytes(&back).unwrap(), bytes);
    }

    #[test]
    fn malformed_bytes_are_rejected() {
        assert!(from_canonical_bytes(&[]).is_err());
        assert!(from_canonical_bytes(&[0xff]).is_err());
        assert!(from_canonical_bytes(&[tag::STRING, 5, 0, 0, 0, 0, 0, 0, 0, b'h']).is_err());
        let mut ok = canonical_bytes(&Value::Bool(true)).unwrap();
        ok.push(0);
        assert!(from_canonical_bytes(&ok).is_err(), "trailing bytes");
    }
}
