//! Property tests for the canonical encoding: hashing is invariant
//! under object-key reordering, encode→decode round-trips, and
//! non-finite floats normalize deterministically.

use proptest::prelude::*;
use serde::Value;
use tia_store::{canonical_bytes, canonical_hash, from_canonical_bytes};

/// A small random value tree. Depth is bounded by construction.
fn arb_value() -> impl Strategy<Value = Value> {
    (any::<u64>(), any::<u64>()).prop_map(|(seed, shape)| build_value(seed, shape % 4, 2))
}

/// Deterministically grows a value tree from two seeds; `depth`
/// bounds recursion.
fn build_value(seed: u64, kind: u64, depth: u32) -> Value {
    let mix = |s: u64, salt: u64| {
        s.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(salt)
            .rotate_left(17)
    };
    match (kind + depth as u64) % 7 {
        0 => Value::Null,
        1 => Value::Bool(seed % 2 == 0),
        2 => Value::UInt(seed),
        3 => Value::Int((seed as i64).wrapping_sub(i64::MAX / 2)),
        4 => Value::Float(f64::from_bits(seed).fract()),
        5 if depth == 0 => Value::String(format!("s{}", seed % 1000)),
        5 => Value::Array(
            (0..(seed % 4))
                .map(|i| build_value(mix(seed, i), i, depth - 1))
                .collect(),
        ),
        _ if depth == 0 => Value::UInt(seed % 9),
        _ => Value::Object(
            (0..(seed % 5))
                .map(|i| (format!("k{i}"), build_value(mix(seed, i + 7), i, depth - 1)))
                .collect(),
        ),
    }
}

/// Recursively reverses the entry order of every object in the tree.
fn permute_objects(value: &Value) -> Value {
    match value {
        Value::Array(items) => Value::Array(items.iter().map(permute_objects).collect()),
        Value::Object(entries) => Value::Object(
            entries
                .iter()
                .rev()
                .map(|(k, v)| (k.clone(), permute_objects(v)))
                .collect(),
        ),
        other => other.clone(),
    }
}

proptest! {
    #[test]
    fn hash_is_stable_under_object_key_reordering(value in arb_value()) {
        let permuted = permute_objects(&value);
        let a = canonical_hash(7, &value).expect("generated keys are unique");
        let b = canonical_hash(7, &permuted).expect("permutation keeps keys unique");
        prop_assert_eq!(a, b);
    }

    #[test]
    fn encode_decode_roundtrip_is_stable(value in arb_value()) {
        let bytes = canonical_bytes(&value).expect("encodable");
        let decoded = from_canonical_bytes(&bytes).expect("decodable");
        // The decoded value is in canonical form; re-encoding it must
        // reproduce the same bytes and the same hash.
        let again = canonical_bytes(&decoded).expect("canonical form re-encodes");
        prop_assert_eq!(&bytes, &again);
        prop_assert_eq!(
            canonical_hash(1, &value).expect("hashable"),
            canonical_hash(1, &decoded).expect("hashable")
        );
    }

    #[test]
    fn float_bit_patterns_normalize_deterministically(bits in any::<u64>()) {
        let f = f64::from_bits(bits);
        let one = canonical_bytes(&Value::Float(f)).expect("floats encode");
        let two = canonical_bytes(&Value::Float(f)).expect("floats encode");
        prop_assert_eq!(&one, &two);
        if f.is_nan() {
            // Every NaN payload collapses to the one canonical NaN.
            let canonical = canonical_bytes(&Value::Float(f64::NAN)).expect("encodes");
            prop_assert_eq!(&one, &canonical);
        }
        if f == 0.0 {
            let zero = canonical_bytes(&Value::Float(0.0)).expect("encodes");
            prop_assert_eq!(&one, &zero, "-0.0 normalizes to +0.0");
        }
        // Decoding gives back the normalized bit pattern exactly.
        let decoded = from_canonical_bytes(&one).expect("decodes");
        let again = canonical_bytes(&decoded).expect("re-encodes");
        prop_assert_eq!(&one, &again);
    }
}
