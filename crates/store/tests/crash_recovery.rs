//! Crash-recovery behavior of the append-only log: a record torn by
//! a mid-append kill is dropped on the next open, every earlier
//! record survives, and the store keeps accepting appends afterwards.

use std::path::PathBuf;

use tia_store::{sha256, Store};

fn temp_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("tia-store-crash-test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn truncated_tail_record_is_dropped_and_earlier_records_survive() {
    let path = temp_store("torn.store");
    let store = Store::open(&path, 1).expect("open");
    let keys: Vec<_> = (0..4u8).map(|i| sha256(&[i])).collect();
    for (i, key) in keys.iter().enumerate() {
        let payload = format!("measurement record {i} with some body to truncate into");
        store.put(*key, payload.as_bytes()).expect("put");
    }
    drop(store);
    let full_len = std::fs::metadata(&path).expect("metadata").len();

    // Simulate a kill mid-append of the last record: chop bytes off
    // the tail so its digest (or frame) can no longer verify.
    for cut in [1u64, 7, 20] {
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() - cut as usize]).expect("truncate");
        let recovered = Store::open(&path, 1).expect("recovering open");
        assert_eq!(recovered.len(), 3, "tail dropped, earlier records intact");
        assert!(recovered.dropped_tail_bytes() > 0);
        for key in &keys[..3] {
            assert!(recovered.contains(key), "early record lost");
        }
        assert!(!recovered.contains(&keys[3]), "torn record must not load");

        // The recovered store accepts appends and persists them.
        recovered
            .put(keys[3], b"rewritten after crash")
            .expect("put");
        drop(recovered);
        let back = Store::open(&path, 1).expect("reopen");
        assert_eq!(back.len(), 4);
        assert_eq!(
            back.get(&keys[3]).as_deref(),
            Some(b"rewritten after crash".as_ref())
        );
        assert_eq!(back.dropped_tail_bytes(), 0, "recovery truncated the file");
        drop(back);

        // Restore the pristine 4-record file for the next cut size.
        // Rebuild from scratch: the recovered file still holds the
        // crash-era record for keys[3], and re-putting over it would
        // leave two records whose relative order the next truncation
        // could flip.
        let _ = std::fs::remove_file(&path);
        let store = Store::open(&path, 1).expect("open");
        for (i, key) in keys.iter().enumerate() {
            let payload = format!("measurement record {i} with some body to truncate into");
            store.put(*key, payload.as_bytes()).expect("put");
        }
        drop(store);
    }

    // Garbage appended after valid records is likewise dropped.
    let mut bytes = std::fs::read(&path).expect("read");
    assert!(bytes.len() as u64 >= full_len, "sanity: log only grows");
    bytes.extend_from_slice(b"\xDE\xAD\xBE\xEF garbage tail");
    std::fs::write(&path, &bytes).expect("write");
    let recovered = Store::open(&path, 1).expect("recovering open");
    assert_eq!(recovered.len(), 4);
    assert!(recovered.dropped_tail_bytes() > 0);

    let _ = std::fs::remove_file(&path);
}

#[test]
fn empty_and_header_only_files_open_clean() {
    let path = temp_store("header.store");
    drop(Store::open(&path, 9).expect("create"));
    let back = Store::open(&path, 9).expect("reopen header-only");
    assert!(back.is_empty());
    assert_eq!(back.dropped_tail_bytes(), 0);
    let _ = std::fs::remove_file(&path);
}
