//! Golden checkpoint compatibility: `tests/data/golden_checkpoint.json`
//! is a checked-in snapshot of the `merge` workload (functional model,
//! test scale) taken 300 cycles into the run. Current code must keep
//! loading it, restoring it, and finishing the run correctly — if a
//! state-struct change breaks the format, this test is the tripwire,
//! and `SNAPSHOT_FORMAT_VERSION` must be bumped alongside a refreshed
//! golden file (regenerate with
//! `cargo test -p tia golden -- --ignored regenerate`).

use std::path::Path;

use tia::ckpt::{Snapshot, SNAPSHOT_FORMAT_VERSION};
use tia::fabric::SystemState;
use tia::isa::Params;
use tia::sim::FuncPe;
use tia::workloads::{Built, Scale, WorkloadKind};

/// The snapshot `kind` tag used by this suite's golden file.
const GOLDEN_KIND: &str = "tia-golden-system";
/// Cycle the golden snapshot was taken at — mid-run: the test-scale
/// merge completes around cycle 253.
const GOLDEN_CYCLE: u64 = 120;

fn golden_path() -> &'static Path {
    Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/data/golden_checkpoint.json"
    ))
}

fn build_merge() -> Built<FuncPe> {
    let params = Params::default();
    let mut factory = |p: &Params, prog| FuncPe::new(p, prog);
    WorkloadKind::Merge
        .build(&params, Scale::Test, &mut factory)
        .expect("merge builds")
}

#[test]
fn golden_checkpoint_still_loads() {
    let snapshot = Snapshot::load(golden_path()).expect("golden checkpoint loads");
    assert_eq!(snapshot.format_version, SNAPSHOT_FORMAT_VERSION);
    snapshot.check_kind(GOLDEN_KIND).expect("kind matches");
    let state =
        <SystemState as serde::Deserialize>::from_value(&snapshot.state).expect("state parses");
    assert_eq!(state.cycle, GOLDEN_CYCLE);
    assert_eq!(state.pes.len(), WorkloadKind::Merge.num_pes());
}

#[test]
fn golden_checkpoint_restores_and_finishes_the_run() {
    let snapshot = Snapshot::load(golden_path()).expect("golden checkpoint loads");
    let state =
        <SystemState as serde::Deserialize>::from_value(&snapshot.state).expect("state parses");

    // Resume the golden run and let it finish; the workload's memory
    // verification is the end-to-end correctness check.
    let mut resumed = build_merge();
    resumed.system.restore_state(&state).expect("restores");
    assert_eq!(resumed.system.cycle(), GOLDEN_CYCLE);
    resumed.run_to_completion().expect("resumed run verifies");

    // And the resumed run must be bit-identical to never having
    // checkpointed at all.
    let mut straight = build_merge();
    straight.run_to_completion().expect("straight run verifies");
    let a = serde_json::to_string_pretty(&straight.system.save_state()).unwrap();
    let b = serde_json::to_string_pretty(&resumed.system.save_state()).unwrap();
    assert_eq!(a, b, "golden resume diverged from the straight run");
}

/// Regenerates the golden file. Run manually after an intentional
/// format change (and bump `SNAPSHOT_FORMAT_VERSION`):
/// `cargo test -p tia golden -- --ignored regenerate`
#[test]
#[ignore = "writes tests/data/golden_checkpoint.json; run on intentional format changes only"]
fn regenerate_golden_checkpoint() {
    let mut built = build_merge();
    for _ in 0..GOLDEN_CYCLE {
        built.system.step();
    }
    let snapshot = Snapshot::new(
        GOLDEN_KIND,
        serde::Serialize::to_value(&built.system.save_state()),
    );
    snapshot.save(golden_path()).expect("golden file written");
}
