//! Differential checkpoint/restore harness: for every workload and
//! every microarchitecture, running K cycles straight must be
//! bit-identical to running K/2 cycles, snapshotting, restoring the
//! snapshot into a freshly built system, and running the remaining
//! cycles. The snapshot is round-tripped through JSON on the way, so
//! the serialized format is exercised too, not just the in-memory
//! state structs.

use tia::core::{Pipeline, UarchConfig, UarchPe};
use tia::fabric::{ProcessingElement, Snapshotable, System, SystemState};
use tia::isa::Params;
use tia::sim::FuncPe;
use tia::workloads::{PeFactory, Scale, WorkloadKind, ALL_WORKLOADS};

/// Cycle budget per differential run. Long enough to get every
/// workload well into (and usually past) its steady state at test
/// scale, short enough to sweep all 320 uarch combinations quickly.
const K: u64 = 1_500;

fn step_n<P: ProcessingElement>(system: &mut System<P>, cycles: u64) {
    // Deliberately no early-out on halt: both sides of the
    // differential must execute exactly the same number of steps.
    for _ in 0..cycles {
        system.step();
    }
}

/// Runs the straight-vs-split differential for one workload over one
/// PE factory and asserts bit-identical final state.
fn assert_differential<P, F>(kind: WorkloadKind, factory: &mut F, label: &str)
where
    P: ProcessingElement + Snapshotable,
    F: PeFactory<P>,
{
    let params = Params::default();
    let build = |f: &mut F| {
        kind.build(&params, Scale::Test, f)
            .unwrap_or_else(|e| panic!("{kind}/{label}: build failed: {e}"))
    };

    let mut straight = build(factory);
    let k = K.min(straight.max_cycles);
    step_n(&mut straight.system, k);

    let mut split = build(factory);
    step_n(&mut split.system, k / 2);
    let json = serde_json::to_string(&split.system.save_state())
        .unwrap_or_else(|e| panic!("{kind}/{label}: snapshot failed to serialize: {e}"));
    let snapshot: SystemState = serde_json::from_str(&json)
        .unwrap_or_else(|e| panic!("{kind}/{label}: snapshot failed to parse back: {e}"));

    let mut resumed = build(factory);
    resumed
        .system
        .restore_state(&snapshot)
        .unwrap_or_else(|e| panic!("{kind}/{label}: restore failed: {e}"));
    assert_eq!(
        resumed.system.cycle(),
        k / 2,
        "{kind}/{label}: restored cycle counter"
    );
    step_n(&mut resumed.system, k - k / 2);

    assert_eq!(
        straight.system.cycle(),
        resumed.system.cycle(),
        "{kind}/{label}: cycle counters diverged"
    );
    assert_eq!(
        straight.system.total_retired(),
        resumed.system.total_retired(),
        "{kind}/{label}: retirement counts diverged"
    );
    // The full-state comparison: every PE's architectural and
    // microarchitectural state, memory, ports, and streams, compared
    // as serialized bytes (field order is stable, so identical state
    // means identical bytes).
    let final_straight = serde_json::to_string_pretty(&straight.system.save_state()).unwrap();
    let final_resumed = serde_json::to_string_pretty(&resumed.system.save_state()).unwrap();
    assert_eq!(
        final_straight, final_resumed,
        "{kind}/{label}: final state diverged"
    );
}

#[test]
fn functional_model_split_runs_match_straight_runs() {
    for kind in ALL_WORKLOADS {
        let mut factory = |p: &Params, prog| FuncPe::new(p, prog);
        assert_differential(kind, &mut factory, "func");
    }
}

fn sweep_uarch(variant: &str, make: fn(Pipeline) -> UarchConfig) {
    for kind in ALL_WORKLOADS {
        for pipeline in Pipeline::ALL {
            let config = make(pipeline);
            let mut factory = |p: &Params, prog| UarchPe::new(p, config, prog);
            assert_differential(kind, &mut factory, &format!("{variant}/{pipeline}"));
        }
    }
}

#[test]
fn uarch_base_split_runs_match_straight_runs() {
    sweep_uarch("base", UarchConfig::base);
}

#[test]
fn uarch_plus_p_split_runs_match_straight_runs() {
    sweep_uarch("+P", UarchConfig::with_p);
}

#[test]
fn uarch_plus_q_split_runs_match_straight_runs() {
    sweep_uarch("+Q", UarchConfig::with_q);
}

#[test]
fn uarch_plus_pq_split_runs_match_straight_runs() {
    sweep_uarch("+P+Q", UarchConfig::with_pq);
}
