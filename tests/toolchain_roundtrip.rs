//! Cross-crate toolchain integration: assembly → program → binary
//! images → program → assembly, with execution equivalence at every
//! stage (the Figure 1 flow from `program.s` to `program.bin`).

use tia::asm::{assemble, disassemble};
use tia::isa::{encoding, Params, Program};
use tia::sim::FuncPe;
use tia::workloads::{Scale, ALL_WORKLOADS};

/// Every benchmark program survives the full round trip:
/// text → Program → 128-bit images → Program → text → Program.
#[test]
fn all_workload_programs_roundtrip_through_binary_and_text() {
    let params = Params::default();
    for kind in ALL_WORKLOADS {
        // Collect each PE's program by building the workload.
        let mut programs: Vec<Program> = Vec::new();
        let mut factory = |p: &Params, prog: Program| {
            programs.push(prog.clone());
            FuncPe::new(p, prog)
        };
        let _ = kind
            .build(&params, Scale::Test, &mut factory)
            .unwrap_or_else(|e| panic!("{kind}: {e}"));
        assert_eq!(programs.len(), kind.num_pes(), "{kind}");

        for (i, program) in programs.iter().enumerate() {
            // Binary image roundtrip (the write-only instruction
            // memory contents).
            let images = program.to_images(&params).unwrap();
            assert_eq!(images.len(), params.num_instructions);
            let back = Program::from_images(&images, &params)
                .unwrap_or_else(|e| panic!("{kind} PE{i}: {e}"));
            assert_eq!(&back, program, "{kind} PE{i}: binary roundtrip");

            // Text roundtrip (disassembler output reassembles).
            let text = disassemble(program, &params);
            let back =
                assemble(&text, &params).unwrap_or_else(|e| panic!("{kind} PE{i}: {e}\n{text}"));
            assert_eq!(&back, program, "{kind} PE{i}: text roundtrip");
        }
    }
}

/// Instructions are 106 bits padded to 128 for the host interface
/// (§2.3), and the padding row-trips through bytes.
#[test]
fn instruction_images_are_106_bits_padded_to_128() {
    let params = Params::default();
    let layout = params.layout();
    assert_eq!(layout.total_bits(), 106);
    assert_eq!(layout.padded_bits(), 128);

    let program = assemble(
        "when %p == XXXX0000 with %i0.0, %i3.0: ult %p7, %i3, %i0; set %p = ZZZZ0001;",
        &params,
    )
    .unwrap();
    let instruction = &program.instructions()[0];
    let bytes = encoding::to_bytes(instruction, &params).unwrap();
    assert_eq!(bytes.len(), 16);
    // The padding bits above 106 are zero.
    let image = u128::from_le_bytes(bytes.clone().try_into().unwrap());
    assert_eq!(image >> 106, 0);
    assert_eq!(&encoding::from_bytes(&bytes, &params).unwrap(), instruction);
}

/// A disassembled-and-reassembled program executes identically.
#[test]
fn reassembled_programs_execute_identically() {
    let params = Params::default();
    let source = "\
        when %p == XXXXX0X0: ult %p1, %r0, 25; set %p = ZZZZZZZ1;
        when %p == XXXXXX11: add %r0, %r0, 3;  set %p = ZZZZZ1Z0;
        when %p == XXXXX1XX: add %r1, %r1, %r0; set %p = ZZZZZ0ZZ;
        when %p == XXXXXX01: halt;";
    let original = assemble(source, &params).unwrap();
    let copy = assemble(&disassemble(&original, &params), &params).unwrap();

    let run = |program: Program| {
        let mut pe = FuncPe::new(&params, program).unwrap();
        while !pe.halted() {
            pe.step_cycle();
        }
        (pe.reg(0), pe.reg(1), pe.counters().retired)
    };
    assert_eq!(run(original), run(copy));
}

/// The parameter file (the root of the Figure 1 toolchain) serializes
/// and controls the encoding.
#[test]
fn params_file_roundtrips_and_governs_the_layout() {
    let params = Params::default();
    let json = serde_json::to_string_pretty(&params).unwrap();
    let back: Params = serde_json::from_str(&json).unwrap();
    assert_eq!(back, params);

    let narrow: Params = serde_json::from_str("{\"num_preds\": 4, \"word_width\": 16}").unwrap();
    narrow.validate().unwrap();
    assert!(narrow.layout().total_bits() < params.layout().total_bits());

    // A program assembled under one parameterization is rejected by a
    // narrower one.
    let program = assemble("when %p == 1XXXXXXX: halt;", &params).unwrap();
    assert!(program.validate(&narrow).is_err());
}

/// The shipped parameter presets (the analog of the paper's
/// `params.yaml`) parse, validate, and drive the encoding.
#[test]
fn shipped_parameter_presets_are_valid() {
    for (name, expect_bits) in [
        ("params/default.json", Some(106)),
        ("params/scratchpad.json", Some(106)),
        ("params/narrow16.json", None),
    ] {
        let text = std::fs::read_to_string(
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../../")
                .join(name),
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        let params: Params = serde_json::from_str(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        params.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        if let Some(bits) = expect_bits {
            assert_eq!(params.layout().total_bits(), bits, "{name}");
        } else {
            assert!(params.layout().total_bits() < 106, "{name} is narrower");
        }
        // The default preset must be byte-for-byte the library default.
        if name == "params/default.json" {
            assert_eq!(params, Params::default());
        }
    }
}
