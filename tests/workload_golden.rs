//! Golden-model verification of the full Table 3 suite through the
//! facade crate, on both simulators.

use tia::core::{Pipeline, UarchConfig, UarchPe};
use tia::isa::Params;
use tia::sim::FuncPe;
use tia::workloads::{Scale, WorkloadKind, ALL_WORKLOADS};

#[test]
fn the_whole_suite_verifies_on_the_functional_model() {
    let params = Params::default();
    for kind in ALL_WORKLOADS {
        let mut factory = |p: &Params, prog| FuncPe::new(p, prog);
        let mut built = kind.build(&params, Scale::Test, &mut factory).unwrap();
        built
            .run_to_completion()
            .unwrap_or_else(|e| panic!("{kind}: {e}"));
    }
}

#[test]
fn the_whole_suite_verifies_on_the_papers_best_balanced_design() {
    // T|DX +P+Q "narrowly dominates" most of the balanced frontier
    // (§5.4 Pareto discussion).
    let params = Params::default();
    let config = UarchConfig::with_pq(Pipeline::T_DX);
    for kind in ALL_WORKLOADS {
        let mut factory = |p: &Params, prog| UarchPe::new(p, config, prog);
        let mut built = kind.build(&params, Scale::Test, &mut factory).unwrap();
        built
            .run_to_completion()
            .unwrap_or_else(|e| panic!("{kind}: {e}"));
    }
}

#[test]
fn dot_product_dynamic_count_matches_the_paper_formula() {
    // §3 reports exactly 20,003 dynamic instructions for dot_product;
    // the worker retires 2 per element plus a 3-instruction epilogue,
    // so the test-scale count must follow the same formula.
    let params = Params::default();
    let mut factory = |p: &Params, prog| FuncPe::new(p, prog);
    let mut built = WorkloadKind::DotProduct
        .build(&params, Scale::Test, &mut factory)
        .unwrap();
    built.run_to_completion().unwrap();
    let retired = built.system.pe(built.worker).counters().retired;
    assert_eq!(retired, 2 * 80 + 3, "2N + 3 with the test N = 80");
    // At paper scale N = 10,000 the same formula gives 20,003.
    assert_eq!(2 * 10_000 + 3, 20_003);
}

#[test]
fn worker_pes_are_the_documented_ones() {
    let params = Params::default();
    for kind in ALL_WORKLOADS {
        let mut factory = |p: &Params, prog| FuncPe::new(p, prog);
        let built = kind.build(&params, Scale::Test, &mut factory).unwrap();
        assert!(built.worker < built.system.num_pes(), "{kind}");
        assert_eq!(built.system.num_pes(), kind.num_pes(), "{kind}");
        assert!(!built.expected.is_empty(), "{kind}: golden checks exist");
        assert!(built.max_cycles > 0, "{kind}");
    }
}
