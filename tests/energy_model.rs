//! End-to-end checks of the paper's energy-delay claims using real
//! cycle-level activity (the small-input `bst`, as in §3 methodology).

use tia::core::{Pipeline, UarchConfig, UarchPe};
use tia::energy::dse::{evaluate, explore, CachedCpi, CpiMeasurement};
use tia::energy::pareto::{density_context, frontier_energy_improvement, pareto_frontier, span};
use tia::energy::tech::VtClass;
use tia::energy::{critical_path_fo4, max_frequency_mhz};
use tia::isa::Params;
use tia::workloads::{Scale, ALL_WORKLOADS};

fn suite_activity() -> impl FnMut(&UarchConfig) -> CpiMeasurement {
    let params = Params::default();
    move |config: &UarchConfig| {
        let mut cpi_sum = 0.0;
        let mut issue_sum = 0.0;
        for kind in ALL_WORKLOADS {
            let mut factory = |p: &Params, prog| UarchPe::new(p, *config, prog);
            let mut built = kind
                .build(&params, Scale::Test, &mut factory)
                .expect("workload builds");
            built.run_to_completion().expect("workload runs");
            let c = built.system.pe(built.worker).counters();
            cpi_sum += c.cpi();
            issue_sum += (c.retired + c.quashed) as f64 / c.cycles.max(1) as f64;
        }
        let n = ALL_WORKLOADS.len() as f64;
        CpiMeasurement {
            cpi: cpi_sum / n,
            issue_rate: issue_sum / n,
            ..CpiMeasurement::default()
        }
    }
}

#[test]
fn the_design_space_reproduces_the_papers_headline_spans() {
    let mut source = CachedCpi::new(suite_activity());
    let points = explore(&mut source);
    assert!(points.len() > 4_000, "{} points", points.len());
    let (e_span, d_span) = span(&points);
    // Paper: 71x energy, 225x delay. The shape claim: both spans are
    // enormous for a single architectural design point.
    assert!(e_span > 25.0, "energy span only {e_span:.1}x");
    assert!(d_span > 80.0, "delay span only {d_span:.1}x");
}

#[test]
fn optimizations_improve_the_balanced_frontier() {
    let mut source = CachedCpi::new(suite_activity());
    let points = explore(&mut source);
    let balanced: Vec<_> = points
        .iter()
        .copied()
        .filter(|p| p.ns_per_inst <= 10.0)
        .collect();
    let frontier_for = |p_on: bool, q_on: bool| {
        pareto_frontier(
            &balanced
                .iter()
                .copied()
                .filter(|p| {
                    p.config.predicate_prediction == p_on && p.config.effective_queue_status == q_on
                })
                .collect::<Vec<_>>(),
        )
    };
    let none = frontier_for(false, false);
    // The optimized family: +P, +Q and +P+Q together, as in the
    // paper's summary ("the two microarchitectural knobs offer clear
    // benefits — together in ultra low power and moderate cases and in
    // queue status alone in high performance").
    let optimized = pareto_frontier(
        &balanced
            .iter()
            .copied()
            .filter(|p| p.config.predicate_prediction || p.config.effective_queue_status)
            .collect::<Vec<_>>(),
    );
    let improvement = frontier_energy_improvement(&none, &optimized);
    // Paper: 20-25% better near the balanced region; require a solid
    // improvement without pinning the value.
    // The direction reproduces robustly; the magnitude is smaller than
    // the paper's because our cycle-level CPI gains (15-20%) are below
    // the FPGA-measured 35% (see EXPERIMENTS.md).
    assert!(
        improvement > 0.02,
        "frontier improvement only {:.1}%",
        100.0 * improvement
    );
    // +Q alone is timing- and power-free, so its frontier can never be
    // worse than the unoptimized one.
    let q_only = frontier_for(false, true);
    let q_improvement = frontier_energy_improvement(&none, &q_only);
    assert!(
        q_improvement >= -1e-9,
        "+Q-only frontier regressed by {:.1}%",
        -100.0 * q_improvement
    );
}

#[test]
fn pareto_designs_sit_below_cpu_and_gpu_power_density() {
    let mut source = CachedCpi::new(suite_activity());
    let points = explore(&mut source);
    let frontier = pareto_frontier(&points);
    assert!(!frontier.is_empty());
    for p in &frontier {
        assert!(
            p.power_density() < density_context::GPU_MAX,
            "{} at {:.0} mW/mm² exceeds the 65nm GPU ceiling",
            p.config,
            p.power_density()
        );
        assert!(p.power_density() < density_context::CPU_MEAN);
    }
}

#[test]
fn high_performance_extreme_is_a_split_alu_two_stager_in_lvt() {
    // Figure 8: the fastest design is TDX1|X2 +Q in low-VT at
    // ~1157 MHz with 1.37 ns/instruction.
    let mut source = CachedCpi::new(suite_activity());
    let points = explore(&mut source);
    let frontier = pareto_frontier(&points);
    let fastest = frontier.first().expect("non-empty");
    assert_eq!(fastest.vt, VtClass::Low, "fastest design uses low VT");
    assert!(
        fastest.config.pipeline.depth() >= 2,
        "fastest design is pipelined"
    );
    assert!(
        fastest.ns_per_inst < 3.0,
        "fastest: {:.2} ns/inst (paper: 1.37)",
        fastest.ns_per_inst
    );
    // And the lowest-energy extreme is high-VT at low voltage.
    let frugal = frontier.last().expect("non-empty");
    assert_eq!(frugal.vt, VtClass::High, "most frugal design uses high VT");
    assert!(frugal.vdd <= 0.6);
    assert!(
        frugal.pj_per_inst < 3.0,
        "frugal: {:.2} pJ/inst (paper: 0.89)",
        frugal.pj_per_inst
    );
}

#[test]
fn timing_anchors_hold_end_to_end() {
    let deep = UarchConfig::base(Pipeline::T_D_X1_X2);
    assert!((critical_path_fo4(&deep) - 53.6).abs() < 1e-9);
    let f = max_frequency_mhz(&deep, 1.0, VtClass::Standard);
    assert!((f - 1184.0).abs() < 15.0, "{f:.0} MHz");
    let spec = UarchConfig::with_p(Pipeline::T_D_X1_X2);
    assert!((critical_path_fo4(&spec) - 64.3).abs() < 1e-9);

    // A 500 MHz SVT design point for the deep pipeline burns ~2.85 mW
    // (§5.4 anchor), independent of workload activity at full issue.
    let p = evaluate(
        &deep,
        VtClass::Standard,
        1.0,
        500.0,
        CpiMeasurement::ideal(),
    )
    .expect("feasible");
    assert!((p.power_mw - 2.852).abs() < 0.2, "{:.3} mW", p.power_mw);
}
