//! Differential validation of the model checker against guarded
//! concrete execution: on random closed relay fabrics, a
//! deadlock-freedom *proof* must imply the runtime watchdog never
//! fires over a long concrete run, and every *counterexample* the
//! checker emits must replay concretely. Either direction failing is
//! a soundness bug in `tia-verify`.
//!
//! The generated fabrics are fork-free (no data-dependent predicate
//! writes) and closed (no environment sources), so the abstract model
//! is exact and the concrete run is deterministic — any disagreement
//! is the checker's fault, never the data's.

use proptest::prelude::*;

use tia::ckpt::{run_guarded, GuardedOutcome, Watchdog};
use tia::fabric::{Link, Memory, ProcessingElement, System, Token};
use tia::isa::{
    DstOperand, InputId, Instruction, Op, OutputId, Params, Program, QueueCheck, SrcOperand, Tag,
    Trigger,
};
use tia::sim::FuncPe;
use tia::verify::fixtures::pe_link;
use tia::verify::{replay_trace, verify_system, SeedToken, VerifyOptions};

/// A relay whose trigger checks `%i0` head-tag against `tag`
/// (inverted when `negate`) and forwards with `out_tag`.
fn relay_variant(tag: u32, negate: bool, out_tag: u32, params: &Params) -> Program {
    let q0 = InputId::new(0, params).expect("input 0 exists");
    let mut program = Program::empty();
    program.push(Instruction {
        valid: true,
        trigger: Trigger {
            queue_checks: vec![QueueCheck {
                queue: q0,
                tag: Tag::new(tag, params).expect("tag fits"),
                negate,
            }],
            ..Trigger::default()
        },
        op: Op::Mov,
        srcs: [SrcOperand::Input(q0), SrcOperand::None],
        dst: DstOperand::Output(OutputId::new(0, params).expect("output 0 exists")),
        out_tag: Tag::new(out_tag, params).expect("tag fits"),
        dequeues: vec![q0],
        ..Instruction::default()
    });
    program
}

/// Builds the concrete twin of the abstract fabric, seeded the same
/// way the replay harness seeds (data word = tag value).
fn concrete_system(
    programs: &[Program],
    params: &Params,
    links: &[Link],
    seeds: &[SeedToken],
) -> System<FuncPe> {
    let mut system = System::new(Memory::new(0));
    for program in programs {
        system.add_pe(FuncPe::new(params, program.clone()).expect("program validates"));
    }
    for link in links {
        system.connect(link.from, link.to).expect("links wire");
    }
    for seed in seeds {
        let pushed = system
            .pe_mut(seed.pe)
            .input_queue_mut(seed.queue)
            .push(Token::new(seed.tag, seed.tag.value()));
        assert!(pushed, "seed fits (at most 3 seeds, capacity 4)");
    }
    system
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn checker_verdicts_agree_with_guarded_execution(
        n in 2usize..=4,
        ring in any::<bool>(),
        cfgs in prop::collection::vec((0u32..2, any::<bool>(), 0u32..2), 4),
        raw_seeds in prop::collection::vec((0usize..8, 0u32..2), 0..=3),
    ) {
        let params = Params::default();
        let programs: Vec<Program> = cfgs
            .iter()
            .take(n)
            .map(|&(tag, negate, out_tag)| relay_variant(tag, negate, out_tag, &params))
            .collect();
        // Ring: i → i+1 mod n (closed). Chain: the last output is
        // undrained and the first input unfed — overflow and wedge
        // territory, which exercises the counterexample direction.
        let links: Vec<Link> = if ring {
            (0..n).map(|i| pe_link(i, 0, (i + 1) % n, 0)).collect()
        } else {
            (0..n - 1).map(|i| pe_link(i, 0, i + 1, 0)).collect()
        };
        let mut options = VerifyOptions::default();
        for &(pe, tag) in &raw_seeds {
            options.seed_tokens.push(SeedToken {
                pe: pe % n,
                queue: 0,
                tag: Tag::new(tag, &params).expect("tag fits"),
            });
        }

        let report = verify_system(&programs, &params, &links, &options);

        // Direction 1: every counterexample replays concretely. These
        // fabrics are fork-free and source-free, so `Diverged` is
        // never excusable.
        for finding in &report.findings {
            let Some(trace) = &finding.trace else { continue };
            let outcome = replay_trace::<FuncPe>(
                &programs,
                &params,
                &links,
                &options.seed_tokens,
                trace,
            )
            .expect("trace is hostable");
            prop_assert!(
                outcome.confirmed(),
                "counterexample for {} did not reproduce: {outcome:?}",
                finding.check
            );
        }

        // Direction 2: a proof means the watchdog stays silent for
        // 50k cycles. (In a proven-deadlock-free closed fabric some PE
        // fires within a bounded stretch of every cycle, so a 512-wide
        // window cannot fire spuriously.)
        if report.deadlock_free() {
            let mut system = concrete_system(&programs, &params, &links, &options.seed_tokens);
            let mut watchdog = Watchdog::new(512);
            let outcome = run_guarded(&mut system, 50_000, &mut watchdog);
            prop_assert!(
                !matches!(outcome, GuardedOutcome::Hung(_)),
                "checker proved deadlock-freedom but the watchdog tripped: {outcome:?}\n\
                 verdict: {}",
                report.verdict()
            );
        }
    }
}
