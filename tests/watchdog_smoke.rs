//! Watchdog smoke test on the lint suite's seeded two-PE deadlock:
//! two relay PEs wired head to tail, each waiting for the token only
//! the other could produce. The fabric never halts, never retires,
//! and holds no buffered tokens — the quiescent-fixed-point hang the
//! watchdog exists to catch.

use tia::asm::assemble;
use tia::ckpt::{hang_report, run_guarded, GuardedOutcome, Hang, Watchdog};
use tia::fabric::{InputRef, Memory, OutputRef, ProcessingElement, System, Token};
use tia::isa::Params;
use tia::sim::FuncPe;

/// The `seeded_two_pe_queue_deadlock_cycle_is_found` program from the
/// lint suite: each PE forwards its input to its output, so neither
/// can ever produce the first token.
fn relay_deadlock_system(params: &Params) -> System<FuncPe> {
    let relay = "when %p == XXXXXXXX with %i0.0: mov %o0.0, %i0; deq %i0;";
    let mut system = System::new(Memory::new(0));
    for _ in 0..2 {
        let program = assemble(relay, params).expect("relay assembles");
        system.add_pe(FuncPe::new(params, program).expect("relay validates"));
    }
    system
        .connect(
            OutputRef::Pe { pe: 0, queue: 0 },
            InputRef::Pe { pe: 1, queue: 0 },
        )
        .expect("wire 0 -> 1");
    system
        .connect(
            OutputRef::Pe { pe: 1, queue: 0 },
            InputRef::Pe { pe: 0, queue: 0 },
        )
        .expect("wire 1 -> 0");
    system
}

#[test]
fn watchdog_flags_the_seeded_two_pe_deadlock_within_its_window() {
    let params = Params::default();
    let mut system = relay_deadlock_system(&params);
    let window = 64;
    let mut watchdog = Watchdog::new(window);
    match run_guarded(&mut system, 100_000, &mut watchdog) {
        GuardedOutcome::Hung(hang) => {
            // Empty queues: this is the quiescent fixed point, not a
            // token deadlock, and it must be flagged within one window
            // of the start (plus the baseline observation).
            assert!(
                matches!(hang, Hang::Quiescent { .. }),
                "expected a quiescent hang, got {hang:?}"
            );
            assert!(
                hang.cycle() <= window + 2,
                "hang at cycle {} should be within the {window}-cycle window",
                hang.cycle()
            );
            assert_eq!(hang.stalled_for(), window);

            // The diagnostic dump carries the hang, a per-PE cycle
            // stack labeling the wedged stall class, and the complete
            // system state for post-mortem inspection.
            let report = hang_report(&system, &hang);
            for key in [
                "\"hang\"",
                "\"description\"",
                "\"system\"",
                "\"pes\"",
                "\"profile\"",
                "\"stack\"",
                "\"bottleneck\"",
                "\"wedged_in\"",
            ] {
                assert!(report.contains(key), "report missing {key}:\n{report}");
            }
            assert!(report.contains("quiescent"), "report:\n{report}");
            // Neither relay PE ever triggers: both are wedged idle
            // (starved inputs, no full outputs, no memory ports).
            assert!(
                report.contains("\"wedged_in\": \"idle\""),
                "report:\n{report}"
            );
        }
        other => panic!("watchdog did not fire: {other:?}"),
    }
}

#[test]
fn watchdog_fires_identically_with_and_without_fast_forward() {
    // The guarded loop fast-forwards through quiescent stretches,
    // crediting skipped cycles to the watchdog (clamped to its quiet
    // headroom). The flagged hang must be indistinguishable from the
    // cycle-by-cycle run's: same variant, same cycle, same stall span.
    let params = Params::default();
    let run = |fast_forward: bool| {
        let mut system = relay_deadlock_system(&params);
        system.set_fast_forward(fast_forward);
        let mut watchdog = Watchdog::new(64);
        let outcome = run_guarded(&mut system, 100_000, &mut watchdog);
        (outcome, system.cycle())
    };
    assert_eq!(run(true), run(false));
}

#[test]
fn watchdog_stays_quiet_on_a_healthy_run_of_the_same_program() {
    // The same relay program with a halting producer: seed PE 0's
    // input directly, let the token circulate, and make sure steady
    // retirement keeps the watchdog silent until the cycle limit.
    let params = Params::default();
    let mut system = relay_deadlock_system(&params);
    assert!(
        system.pe_mut(0).input_queue_mut(0).push(Token::data(7)),
        "seed token fits"
    );
    let mut watchdog = Watchdog::new(64);
    let outcome = run_guarded(&mut system, 1_000, &mut watchdog);
    assert_eq!(outcome, GuardedOutcome::CycleLimit { cycle: 1_000 });
    assert!(system.total_retired() > 0);
}
