//! Watchdog smoke test on the shared `tia_verify::fixtures` relay
//! deadlock: two relay PEs wired head to tail, each waiting for the
//! token only the other could produce. The fabric never halts, never
//! retires, and holds no buffered tokens — the quiescent-fixed-point
//! hang the watchdog exists to catch.
//!
//! The fixture lives in `tia-verify` so the *same* fabric is checked
//! statically by the model checker (see `verify_replay.rs`, which
//! asserts the checker finds this exact wedge) and dynamically here.

use tia::ckpt::{hang_report, run_guarded, GuardedOutcome, Hang, Watchdog};
use tia::fabric::{Memory, ProcessingElement, System, Token};
use tia::isa::Params;
use tia::sim::FuncPe;
use tia::verify::fixtures::{relay_deadlock, Fixture};

/// Builds the concrete system for the shared relay-deadlock fixture.
fn fixture_system(fixture: &Fixture, params: &Params) -> System<FuncPe> {
    let mut system = System::new(Memory::new(0));
    for program in &fixture.programs {
        system.add_pe(FuncPe::new(params, program.clone()).expect("fixture validates"));
    }
    for link in &fixture.links {
        system.connect(link.from, link.to).expect("fixture wires");
    }
    system
}

fn relay_deadlock_system(params: &Params) -> System<FuncPe> {
    fixture_system(&relay_deadlock(params), params)
}

#[test]
fn watchdog_flags_the_seeded_two_pe_deadlock_within_its_window() {
    let params = Params::default();
    let mut system = relay_deadlock_system(&params);
    let window = 64;
    let mut watchdog = Watchdog::new(window);
    match run_guarded(&mut system, 100_000, &mut watchdog) {
        GuardedOutcome::Hung(hang) => {
            // Empty queues: this is the quiescent fixed point, not a
            // token deadlock, and it must be flagged within one window
            // of the start (plus the baseline observation).
            assert!(
                matches!(hang, Hang::Quiescent { .. }),
                "expected a quiescent hang, got {hang:?}"
            );
            assert!(
                hang.cycle() <= window + 2,
                "hang at cycle {} should be within the {window}-cycle window",
                hang.cycle()
            );
            assert_eq!(hang.stalled_for(), window);

            // The diagnostic dump carries the hang, a per-PE cycle
            // stack labeling the wedged stall class, and the complete
            // system state for post-mortem inspection.
            let report = hang_report(&system, &hang);
            for key in [
                "\"hang\"",
                "\"description\"",
                "\"system\"",
                "\"pes\"",
                "\"profile\"",
                "\"stack\"",
                "\"bottleneck\"",
                "\"wedged_in\"",
            ] {
                assert!(report.contains(key), "report missing {key}:\n{report}");
            }
            assert!(report.contains("quiescent"), "report:\n{report}");
            // Neither relay PE ever triggers: both are wedged idle
            // (starved inputs, no full outputs, no memory ports).
            assert!(
                report.contains("\"wedged_in\": \"idle\""),
                "report:\n{report}"
            );
        }
        other => panic!("watchdog did not fire: {other:?}"),
    }
}

#[test]
fn watchdog_fires_identically_with_and_without_fast_forward() {
    // The guarded loop fast-forwards through quiescent stretches,
    // crediting skipped cycles to the watchdog (clamped to its quiet
    // headroom). The flagged hang must be indistinguishable from the
    // cycle-by-cycle run's: same variant, same cycle, same stall span.
    let params = Params::default();
    let run = |fast_forward: bool| {
        let mut system = relay_deadlock_system(&params);
        system.set_fast_forward(fast_forward);
        let mut watchdog = Watchdog::new(64);
        let outcome = run_guarded(&mut system, 100_000, &mut watchdog);
        (outcome, system.cycle())
    };
    assert_eq!(run(true), run(false));
}

#[test]
fn watchdog_stays_quiet_on_a_healthy_run_of_the_same_program() {
    // The same relay program with a halting producer: seed PE 0's
    // input directly, let the token circulate, and make sure steady
    // retirement keeps the watchdog silent until the cycle limit.
    let params = Params::default();
    let mut system = relay_deadlock_system(&params);
    assert!(
        system.pe_mut(0).input_queue_mut(0).push(Token::data(7)),
        "seed token fits"
    );
    let mut watchdog = Watchdog::new(64);
    let outcome = run_guarded(&mut system, 1_000, &mut watchdog);
    assert_eq!(outcome, GuardedOutcome::CycleLimit { cycle: 1_000 });
    assert!(system.total_retired() > 0);
}

#[test]
fn checker_and_watchdog_agree_on_the_shared_fixture() {
    // The model checker must find, statically, the same wedge the
    // runtime watchdog catches dynamically — same classification
    // (quiescent: frozen with zero buffered tokens).
    let params = Params::default();
    let fixture = relay_deadlock(&params);
    let report =
        tia::verify::verify_system(&fixture.programs, &params, &fixture.links, &fixture.options);
    assert!(report.exhaustive, "{report:?}");
    let finding = report
        .findings
        .iter()
        .find(|f| f.check == tia::lint::Check::FabricQuiescence)
        .expect("checker finds the quiescent wedge");
    let trace = finding.trace.as_ref().expect("with a counterexample");
    assert_eq!(trace.bad.tokens, 0, "quiescent means zero tokens");

    let mut system = relay_deadlock_system(&params);
    let mut watchdog = Watchdog::new(64);
    match run_guarded(&mut system, 100_000, &mut watchdog) {
        GuardedOutcome::Hung(hang) => {
            assert!(
                matches!(hang, Hang::Quiescent { .. }),
                "watchdog classification must match the checker's: {hang:?}"
            );
        }
        other => panic!("watchdog missed the verified wedge: {other:?}"),
    }
}
