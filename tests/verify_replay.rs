//! Counterexample fidelity: every verdict the model checker returns on
//! the seeded-defect fixture corpus must either be a proof or come
//! with a counterexample trace that **replays concretely** on
//! `FuncPe`/`System` and reaches the claimed bad state. A trace that
//! fails to reproduce is a checker bug, and this suite fails on it.

use tia::isa::Params;
use tia::lint::Check;
use tia::sim::FuncPe;
use tia::verify::fixtures::{
    pipeline, relay_deadlock, seeded_ring, tag_mismatch_pair, undrained_output, Fixture,
};
use tia::verify::{replay_trace, verify_system, Claim, VerifyReport};

/// Verifies a fixture and replays every counterexample it produced,
/// panicking on any divergence. Returns the report for further
/// assertions.
fn verify_and_replay(fixture: &Fixture, params: &Params) -> VerifyReport {
    let report = verify_system(&fixture.programs, params, &fixture.links, &fixture.options);
    for finding in &report.findings {
        let Some(trace) = &finding.trace else {
            continue;
        };
        let outcome = replay_trace::<FuncPe>(
            &fixture.programs,
            params,
            &fixture.links,
            &fixture.options.seed_tokens,
            trace,
        )
        .expect("trace is hostable");
        assert!(
            outcome.confirmed(),
            "counterexample for {} did not reproduce: {outcome:?}\ntrace: {trace:?}",
            finding.check
        );
    }
    report
}

#[test]
fn relay_deadlock_counterexample_replays_to_the_quiescent_wedge() {
    let params = Params::default();
    let fixture = relay_deadlock(&params);
    let report = verify_and_replay(&fixture, &params);
    let finding = report
        .findings
        .iter()
        .find(|f| f.check == Check::FabricQuiescence)
        .expect("the unseeded ring wedges quiescently");
    let trace = finding.trace.as_ref().expect("with counterexample");
    assert_eq!(trace.claim, Claim::Quiescent);
    assert_eq!(trace.bad.tokens, 0);
}

#[test]
fn tag_mismatch_counterexample_replays_to_a_token_deadlock() {
    let params = Params::default();
    let fixture = tag_mismatch_pair(&params);
    let report = verify_and_replay(&fixture, &params);
    let finding = report
        .findings
        .iter()
        .find(|f| f.check == Check::FabricDeadlock)
        .expect("wedged tag-1 tokens deadlock the pair");
    let trace = finding.trace.as_ref().expect("with counterexample");
    assert_eq!(trace.claim, Claim::Deadlock);
    // The consumer's input queue holds tokens it can never accept and
    // the producer's output is backed up behind them.
    assert!(trace.bad.tokens > 0);
}

#[test]
fn undrained_output_counterexample_replays_to_the_full_queue() {
    let params = Params::default();
    let fixture = undrained_output(&params);
    let report = verify_and_replay(&fixture, &params);
    let finding = report
        .findings
        .iter()
        .find(|f| f.check == Check::ChannelOverflow)
        .expect("the undrained output overflows");
    assert_eq!(
        finding.trace.as_ref().map(|t| t.claim.clone()),
        Some(Claim::Overflow { pe: 0, queue: 0 })
    );
}

#[test]
fn healthy_fixtures_are_proofs_with_nothing_to_replay() {
    let params = Params::default();
    for (name, fixture) in [
        ("seeded_ring", seeded_ring(&params)),
        ("pipeline", pipeline(&params)),
    ] {
        let report = verify_and_replay(&fixture, &params);
        assert!(report.exhaustive, "{name}: {report:?}");
        assert!(report.findings.is_empty(), "{name}: {report:?}");
        assert!(report.live(), "{name}");
    }
}

#[test]
fn tampered_traces_are_rejected_by_the_replay_harness() {
    // The inverse property: replay must actually *check* the claim,
    // not rubber-stamp it. Corrupt a genuine counterexample in two
    // ways and make sure the harness refuses both.
    let params = Params::default();
    let fixture = tag_mismatch_pair(&params);
    let report = verify_system(&fixture.programs, &params, &fixture.links, &fixture.options);
    let genuine = report
        .findings
        .iter()
        .find_map(|f| {
            (f.check == Check::FabricDeadlock)
                .then(|| f.trace.clone())
                .flatten()
        })
        .expect("deadlock counterexample");

    // Wrong final predicate claim.
    let mut wrong_preds = genuine.clone();
    wrong_preds.bad.preds[0] ^= 1;
    let outcome = replay_trace::<FuncPe>(
        &fixture.programs,
        &params,
        &fixture.links,
        &fixture.options.seed_tokens,
        &wrong_preds,
    )
    .expect("hostable");
    assert!(!outcome.confirmed(), "corrupted predicates slipped through");

    // Wrong firing schedule: claim pe1 fires on the first cycle.
    let mut wrong_fired = genuine.clone();
    wrong_fired.steps[0].fired[1] = Some(0);
    let outcome = replay_trace::<FuncPe>(
        &fixture.programs,
        &params,
        &fixture.links,
        &fixture.options.seed_tokens,
        &wrong_fired,
    )
    .expect("hostable");
    assert!(!outcome.confirmed(), "corrupted schedule slipped through");
}
