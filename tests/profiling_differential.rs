//! Differential profiling harness: for every workload and every
//! pipeline (10 workloads × 8 pipelines at +P+Q, plus the functional
//! model), running under the cycle-stack profiler must be
//! bit-identical to running without it — same stop reason, same cycle
//! count, same retirement totals, and a byte-identical serialized
//! snapshot — while every PE's stack sums exactly to the observed
//! cycle count. A proptest half drives randomly generated linear
//! phase-machine programs under random streamed traffic and asserts
//! the same attribution invariant cycle by cycle.

use proptest::prelude::*;
use tia::core::{Pipeline, UarchConfig, UarchPe};
use tia::fabric::{ProcessingElement, Snapshotable, System, Token};
use tia::isa::{Params, Program};
use tia::prof::{profile_run, PeProfiler, ProfileSource};
use tia::sim::FuncPe;
use tia::workloads::{PeFactory, Scale, WorkloadKind, ALL_WORKLOADS};

/// Cycle budget per differential run (as in the fast-forward
/// differential: long enough to cross each workload's halt at test
/// scale).
const K: u64 = 1_500;

fn snapshot_json<P: ProcessingElement + Snapshotable>(system: &System<P>) -> String {
    serde_json::to_string_pretty(&system.save_state()).expect("snapshot serializes")
}

/// Runs the profiled-vs-plain differential for one workload over one
/// PE factory: bit-identical outcomes, and the attribution invariant
/// on every PE of the profiled run.
fn assert_differential<P, F>(kind: WorkloadKind, factory: &mut F, label: &str)
where
    P: ProcessingElement + Snapshotable + ProfileSource,
    F: PeFactory<P>,
{
    let params = Params::default();
    let build = |f: &mut F| {
        kind.build(&params, Scale::Test, f)
            .unwrap_or_else(|e| panic!("{kind}/{label}: build failed: {e}"))
    };

    let mut profiled = build(factory);
    let k = K.min(profiled.max_cycles);
    let (reason_profiled, profiler) = profile_run(&mut profiled.system, k);

    let mut plain = build(factory);
    let reason_plain = plain.system.run(k);

    assert_eq!(
        reason_profiled, reason_plain,
        "{kind}/{label}: stop reasons diverged"
    );
    assert_eq!(
        profiled.system.cycle(),
        plain.system.cycle(),
        "{kind}/{label}: cycle counters diverged"
    );
    assert_eq!(
        profiled.system.total_retired(),
        plain.system.total_retired(),
        "{kind}/{label}: retirement counts diverged"
    );
    assert_eq!(
        snapshot_json(&profiled.system),
        snapshot_json(&plain.system),
        "{kind}/{label}: final state diverged"
    );

    let observed = profiler.observed_cycles();
    assert_eq!(observed, profiled.system.cycle(), "{kind}/{label}");
    for pe in 0..profiler.num_pes() {
        assert_eq!(
            profiler.stack(pe).total(),
            observed,
            "{kind}/{label} pe {pe}: cycle-stack attribution leak"
        );
    }
}

#[test]
fn functional_model_profiling_is_bit_identical() {
    for kind in ALL_WORKLOADS {
        let mut factory = |p: &Params, prog| FuncPe::new(p, prog);
        assert_differential(kind, &mut factory, "func");
    }
}

#[test]
fn uarch_sweep_profiling_is_bit_identical() {
    // 10 workloads × 8 pipelines. +P+Q exercises every profiler path:
    // speculation quashes, predictor recovery, and the +Q-visible
    // queue state the stall insight reads.
    for kind in ALL_WORKLOADS {
        for pipeline in Pipeline::ALL {
            let config = UarchConfig::with_pq(pipeline);
            let mut factory = |p: &Params, prog| UarchPe::new(p, config, prog);
            assert_differential(kind, &mut factory, &format!("+P+Q/{pipeline}"));
        }
    }
}

// ---------------------------------------------------------------------
// Property half: random linear phase-machine programs under random
// streamed traffic, stack checked after every cycle.

/// One phase of a generated program: do `op` then advance.
#[derive(Debug, Clone)]
struct Phase {
    op: &'static str,
}

const OPS: &[&str] = &[
    "add %r0, %r0, 1",
    "sub %r1, %r0, 1",
    "and %r2, %r0, %r1",
    "or %r3, %r0, 3",
    "xor %r2, %r2, %r1",
    "umax %r1, %r0, 1",
    "ult %p3, %r1, %r0",
    "mov %r3, %r0",
];

fn arb_phase() -> impl Strategy<Value = Phase> {
    (0..OPS.len()).prop_map(|i| Phase { op: OPS[i] })
}

/// Builds a linear phase machine over predicates %p0..%p1 (4 phases
/// max): each phase runs its op once, the last phase halts. Phase `i`
/// is encoded in two predicate bits.
fn build_program(phases: &[Phase], params: &Params) -> Program {
    let mut text = String::new();
    for (i, phase) in phases.iter().enumerate() {
        let cur = format!("XXXXXX{}{}", (i >> 1) & 1, i & 1);
        let next = i + 1;
        let set = format!("ZZZZZZ{}{}", (next >> 1) & 1, next & 1);
        text.push_str(&format!(
            "when %p == {cur}: {}; set %p = {set};\n",
            phase.op
        ));
    }
    let last = phases.len();
    let cur = format!("XXXXXX{}{}", (last >> 1) & 1, last & 1);
    text.push_str(&format!("when %p == {cur}: halt;\n"));
    tia::asm::assemble(&text, params).expect("generated program assembles")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random programs, random preloaded input tokens, both models:
    /// after *every* stepped cycle the stack total equals the cycles
    /// observed so far, and the final stacks account for the drain
    /// tail in the `halted` leaf.
    #[test]
    fn random_programs_never_leak_cycles(
        phases in proptest::collection::vec(arb_phase(), 1..=3),
        preload in proptest::collection::vec(0u32..100, 0..4),
        pipeline_idx in 0..Pipeline::ALL.len(),
    ) {
        let params = Params::default();
        let program = build_program(&phases, &params);

        // Functional model.
        let mut pe = FuncPe::new(&params, program.clone()).expect("valid program");
        for &v in &preload {
            let _ = pe.input_queue_mut(0).push(Token::data(v));
        }
        check_stepwise(&mut pe, |p| { p.step_cycle(); }, |p| p.halted());

        // Cycle-level model at +P+Q on a random pipeline.
        let config = UarchConfig::with_pq(Pipeline::ALL[pipeline_idx]);
        let mut pe = UarchPe::new(&params, config, program).expect("valid program");
        for &v in &preload {
            let _ = pe.input_queue_mut(0).push(Token::data(v));
        }
        check_stepwise(&mut pe, |p| p.step_cycle(), |p| p.halted());
    }
}

/// Steps `pe` to halt (bounded), observing after every cycle and
/// asserting the invariant each time, then drains 7 post-halt cycles
/// that must land in the `halted` leaf.
fn check_stepwise<P: ProfileSource>(
    pe: &mut P,
    mut step: impl FnMut(&mut P),
    halted: impl Fn(&P) -> bool,
) {
    let mut prof = PeProfiler::new(pe, 0);
    let mut cycle = 0u64;
    while !halted(pe) && cycle < 400 {
        step(pe);
        cycle += 1;
        prof.observe(pe, cycle);
        assert_eq!(prof.stack().total(), cycle, "attribution leak at {cycle}");
    }
    let halted_before = prof.stack().halted;
    for _ in 0..7 {
        cycle += 1;
        prof.observe(pe, cycle);
    }
    assert_eq!(prof.stack().total(), cycle);
    if halted(pe) {
        assert_eq!(prof.stack().halted, halted_before + 7);
    }
}
