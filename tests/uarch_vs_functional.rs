//! Whole-stack equivalence and microarchitectural ordering properties
//! across the workspace crates.

use tia::core::{Pipeline, UarchConfig, UarchPe};
use tia::isa::Params;
use tia::sim::FuncPe;
use tia::workloads::{Scale, WorkloadKind};

fn uarch_counters(kind: WorkloadKind, config: UarchConfig) -> tia::core::UarchCounters {
    let params = Params::default();
    let mut factory = |p: &Params, prog| UarchPe::new(p, config, prog);
    let mut built = kind.build(&params, Scale::Test, &mut factory).unwrap();
    built.run_to_completion().unwrap();
    *built.system.pe(built.worker).counters()
}

#[test]
fn deeper_base_pipelines_never_have_lower_cpi() {
    // Without the optimizations, added pipeline registers only add
    // hazard stalls; CPI must be monotone in depth for every workload.
    for kind in [WorkloadKind::Gcd, WorkloadKind::Bst, WorkloadKind::Udiv] {
        let by_depth: Vec<f64> = [
            Pipeline::TDX,
            Pipeline::T_DX,
            Pipeline::T_D_X,
            Pipeline::T_D_X1_X2,
        ]
        .iter()
        .map(|&p| uarch_counters(kind, UarchConfig::base(p)).cpi())
        .collect();
        for w in by_depth.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-9,
                "{kind}: CPI not monotone in depth: {by_depth:?}"
            );
        }
    }
}

#[test]
fn optimizations_never_hurt_cpi_on_the_deep_pipeline() {
    for kind in [
        WorkloadKind::Gcd,
        WorkloadKind::Mean,
        WorkloadKind::Stream,
        WorkloadKind::DotProduct,
        WorkloadKind::Udiv,
    ] {
        let base = uarch_counters(kind, UarchConfig::base(Pipeline::T_D_X1_X2)).cpi();
        let pq = uarch_counters(kind, UarchConfig::with_pq(Pipeline::T_D_X1_X2)).cpi();
        assert!(
            pq <= base + 1e-9,
            "{kind}: +P+Q worsened CPI ({pq:.3} vs {base:.3})"
        );
    }
}

#[test]
fn predictable_workloads_predict_well_and_entropic_ones_do_not() {
    // Figure 4's qualitative split: gcd/stream/mean near-perfect;
    // filter/merge near the 50% worst case.
    let config = UarchConfig::with_pq(Pipeline::T_DX);
    for kind in [WorkloadKind::Gcd, WorkloadKind::Stream, WorkloadKind::Mean] {
        let acc = uarch_counters(kind, config).prediction_accuracy();
        assert!(
            acc > 0.9,
            "{kind}: accuracy {acc:.2} should be near-perfect"
        );
    }
    for kind in [WorkloadKind::Filter, WorkloadKind::Merge] {
        let acc = uarch_counters(kind, config).prediction_accuracy();
        assert!(
            (0.3..0.75).contains(&acc),
            "{kind}: accuracy {acc:.2} should be near the coin-flip worst case"
        );
    }
    // dot_product's worker makes no datapath predicate writes at all.
    let c = uarch_counters(WorkloadKind::DotProduct, config);
    assert_eq!(c.predicate_writes, 0);
    assert_eq!(c.predictions, 0);
}

#[test]
fn functional_and_tdx_agree_on_every_counter_that_exists_in_both() {
    let params = Params::default();
    for kind in [
        WorkloadKind::ArgMax,
        WorkloadKind::Filter,
        WorkloadKind::Merge,
    ] {
        let mut f_factory = |p: &Params, prog| FuncPe::new(p, prog);
        let mut f = kind.build(&params, Scale::Test, &mut f_factory).unwrap();
        f.run_to_completion().unwrap();
        let fc = *f.system.pe(f.worker).counters();

        let config = UarchConfig::base(Pipeline::TDX);
        let mut u_factory = |p: &Params, prog| UarchPe::new(p, config, prog);
        let mut u = kind.build(&params, Scale::Test, &mut u_factory).unwrap();
        u.run_to_completion().unwrap();
        let uc = *u.system.pe(u.worker).counters();

        assert_eq!(fc.retired, uc.retired, "{kind}: retired");
        assert_eq!(fc.cycles, uc.cycles, "{kind}: cycles");
        assert_eq!(
            fc.predicate_writes, uc.predicate_writes,
            "{kind}: pred writes"
        );
        assert_eq!(fc.dequeues, uc.dequeues, "{kind}: dequeues");
        assert_eq!(fc.enqueues, uc.enqueues, "{kind}: enqueues");
    }
}

#[test]
fn pred_hazard_component_is_depth_dependent_and_q_shrinks_no_trigger() {
    // Figure 5's two structural observations on a branchy workload.
    let kind = WorkloadKind::Bst;
    let d2 = uarch_counters(kind, UarchConfig::base(Pipeline::T_DX));
    let d3 = uarch_counters(kind, UarchConfig::base(Pipeline::T_D_X));
    let d4 = uarch_counters(kind, UarchConfig::base(Pipeline::T_D_X1_X2));
    let h2 = d2.cpi_stack().predicate_hazard;
    let h3 = d3.cpi_stack().predicate_hazard;
    let h4 = d4.cpi_stack().predicate_hazard;
    assert!(h2 > 0.0);
    assert!(h3 > h2, "predicate hazards grow with depth: {h2} {h3} {h4}");
    assert!(h4 > h3, "predicate hazards grow with depth: {h2} {h3} {h4}");

    let p_only = uarch_counters(kind, UarchConfig::with_p(Pipeline::T_D_X1_X2));
    assert_eq!(
        p_only.cpi_stack().predicate_hazard,
        0.0,
        "+P eliminates them"
    );

    // The no-trigger reduction from +Q needs a queue-dense worker;
    // merge's two-instruction loop enqueues every other instruction.
    let m_p = uarch_counters(
        WorkloadKind::Merge,
        UarchConfig::with_p(Pipeline::T_D_X1_X2),
    );
    let m_pq = uarch_counters(
        WorkloadKind::Merge,
        UarchConfig::with_pq(Pipeline::T_D_X1_X2),
    );
    assert!(
        m_pq.cpi_stack().not_triggered < m_p.cpi_stack().not_triggered,
        "+Q shrinks merge's no-trigger component: {} vs {}",
        m_pq.cpi_stack().not_triggered,
        m_p.cpi_stack().not_triggered
    );
}
