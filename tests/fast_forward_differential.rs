//! Differential fast-forward harness: for every workload and every
//! microarchitecture (10 workloads × 8 pipelines × {base, +P, +Q,
//! +P+Q}, plus the functional model), running with the
//! quiescence-aware fast-forward engine must be bit-identical to
//! stepping every cycle — same stop reason, same cycle count, same
//! retirement totals, and a byte-identical serialized snapshot (the
//! checkpoint layer's complete view of counters, queues, ports,
//! streams and per-PE microarchitectural state).

use tia::core::{Pipeline, UarchConfig, UarchPe};
use tia::fabric::{ProcessingElement, Snapshotable, System};
use tia::isa::Params;
use tia::sim::FuncPe;
use tia::workloads::{PeFactory, Scale, WorkloadKind, ALL_WORKLOADS};

/// Cycle budget per differential run. Long enough to reach (and
/// usually pass) each workload's halt at test scale, so both engines
/// cross genuine stall stretches and the post-halt tail.
const K: u64 = 1_500;

fn snapshot_json<P: ProcessingElement + Snapshotable>(system: &System<P>) -> String {
    serde_json::to_string_pretty(&system.save_state()).expect("snapshot serializes")
}

/// Runs the fast-vs-stepped differential for one workload over one PE
/// factory and asserts bit-identical outcomes.
fn assert_differential<P, F>(kind: WorkloadKind, factory: &mut F, label: &str)
where
    P: ProcessingElement + Snapshotable,
    F: PeFactory<P>,
{
    let params = Params::default();
    let build = |f: &mut F| {
        kind.build(&params, Scale::Test, f)
            .unwrap_or_else(|e| panic!("{kind}/{label}: build failed: {e}"))
    };

    let mut fast = build(factory);
    fast.system.set_fast_forward(true);
    let k = K.min(fast.max_cycles);
    let reason_fast = fast.system.run(k);

    let mut slow = build(factory);
    slow.system.set_fast_forward(false);
    let reason_slow = slow.system.run(k);

    assert_eq!(
        reason_fast, reason_slow,
        "{kind}/{label}: stop reasons diverged"
    );
    assert_eq!(
        fast.system.cycle(),
        slow.system.cycle(),
        "{kind}/{label}: cycle counters diverged"
    );
    assert_eq!(
        fast.system.total_retired(),
        slow.system.total_retired(),
        "{kind}/{label}: retirement counts diverged"
    );
    let state_fast = snapshot_json(&fast.system);
    let state_slow = snapshot_json(&slow.system);
    assert_eq!(
        state_fast, state_slow,
        "{kind}/{label}: final state diverged"
    );
}

#[test]
fn functional_model_fast_forward_matches_stepping() {
    for kind in ALL_WORKLOADS {
        let mut factory = |p: &Params, prog| FuncPe::new(p, prog);
        assert_differential(kind, &mut factory, "func");
    }
}

fn sweep_uarch(variant: &str, make: fn(Pipeline) -> UarchConfig) {
    for kind in ALL_WORKLOADS {
        for pipeline in Pipeline::ALL {
            let config = make(pipeline);
            let mut factory = |p: &Params, prog| UarchPe::new(p, config, prog);
            assert_differential(kind, &mut factory, &format!("{variant}/{pipeline}"));
        }
    }
}

#[test]
fn uarch_base_fast_forward_matches_stepping() {
    sweep_uarch("base", UarchConfig::base);
}

#[test]
fn uarch_plus_p_fast_forward_matches_stepping() {
    sweep_uarch("+P", UarchConfig::with_p);
}

#[test]
fn uarch_plus_q_fast_forward_matches_stepping() {
    sweep_uarch("+Q", UarchConfig::with_q);
}

#[test]
fn uarch_plus_pq_fast_forward_matches_stepping() {
    sweep_uarch("+P+Q", UarchConfig::with_pq);
}
