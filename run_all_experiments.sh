#!/usr/bin/env bash
# Regenerates every table, figure and ablation of the paper into
# results/. Pass --test-scale for a fast small-input run.
set -euo pipefail
cd "$(dirname "$0")"

SCALE="${1:-}"
mkdir -p results
cargo build --release -p tia-bench -p tia-asm

BINS=(
    sec1_tradeoff_modes
    table1_params
    table2_encoding
    table3_workloads
    fig3_breakdown
    fig4_prediction
    fig5_cpi_stacks
    fig6_voltage_frontiers
    fig7_optimization_benefit
    fig8_pareto_designs
    sec3_characterization
    sec4_instruction_memory
    sec54_overheads
    ablation_nested_speculation
    ablation_predictor
    ablation_queue_capacity
)

for bin in "${BINS[@]}"; do
    echo "== $bin"
    # shellcheck disable=SC2086
    ./target/release/"$bin" $SCALE > "results/$bin.txt"
done

./target/release/dse_export $SCALE -o results/design_space.json
./target/release/dump_workload_asm results/asm
echo "all outputs in results/"
