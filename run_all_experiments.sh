#!/usr/bin/env bash
# Regenerates every table, figure and ablation of the paper into
# results/. Pass --test-scale for a fast small-input run and
# --jobs N to bound the experiment pool (default: nproc).
#
# Each experiment writes results/<name>.txt (the human-readable table)
# and results/logs/<name>.log (its stderr); binaries that support
# `--json` also write results/<name>.json with the same data points in
# machine-readable form. Per-experiment wall-clock times land in
# results/suite_timing.json. Failures are reported per experiment and
# the script exits non-zero if any experiment fails.
set -euo pipefail
cd "$(dirname "$0")"

SCALE=""
JOBS="$(nproc 2>/dev/null || echo 1)"
while (($# > 0)); do
    case "$1" in
        --test-scale) SCALE="--test-scale" ;;
        --jobs)
            JOBS="${2:?--jobs needs a count}"
            shift
            ;;
        --jobs=*) JOBS="${1#--jobs=}" ;;
        *)
            echo "usage: $0 [--test-scale] [--jobs N]" >&2
            exit 2
            ;;
    esac
    shift
done
case "$JOBS" in
    '' | *[!0-9]* | 0)
        echo "--jobs must be a positive integer, got '$JOBS'" >&2
        exit 2
        ;;
esac

mkdir -p results results/logs results/store
timing_dir="$(mktemp -d)"
trap 'rm -rf "$timing_dir"' EXIT
cargo build --release -p tia-bench -p tia-asm

# One content-addressed measurement store shared by every sweep in the
# suite (fig6/7/8 and dse_export all key their per-configuration
# activity measurements through it). Keys embed workload, scale, ISA
# parameters and microarchitecture, so test- and paper-scale runs
# coexist in one file; concurrent experiments serialize appends
# through the store's lock file. A warm store turns every repeated
# sweep into pure lookups; an interrupted suite resumes the same way.
STORE="results/store/measurements.store"
export TIA_STORE="$STORE"

BINS=(
    sec1_tradeoff_modes
    table1_params
    table2_encoding
    table3_workloads
    fig3_breakdown
    fig4_prediction
    fig5_cpi_stacks
    fig6_voltage_frontiers
    fig7_optimization_benefit
    fig8_pareto_designs
    sec3_characterization
    sec4_instruction_memory
    sec54_overheads
    ablation_nested_speculation
    ablation_predictor
    ablation_queue_capacity
)

suite_start=$SECONDS

# run_experiment NAME OUTFILE CMD...: runs CMD with stdout captured to
# OUTFILE and stderr to results/logs/NAME.log, reporting wall-clock
# time, and records (rather than aborts on) a failure so one broken
# experiment doesn't hide the rest.
run_experiment() {
    local name="$1" outfile="$2"
    shift 2
    local start=$SECONDS status=0
    local log="results/logs/$name.log"
    "$@" > "$outfile" 2> "$log" || status=$?
    local secs=$((SECONDS - start))
    printf '%s %s\n' "$status" "$secs" > "$timing_dir/$name"
    if ((status == 0)); then
        echo "== $name (${secs}s)"
    else
        echo "== $name FAILED (exit $status, ${secs}s; log: $log)" >&2
    fi
    return "$status"
}

# launch NAME OUTFILE CMD...: run_experiment in the background, holding
# the number of in-flight experiments at or under JOBS.
launch() {
    while (($(jobs -rp | wc -l) >= JOBS)); do
        wait -n || true # failures are collected from $timing_dir below
    done
    run_experiment "$@" &
}

names=()
for bin in "${BINS[@]}"; do
    names+=("$bin")
    # shellcheck disable=SC2086
    launch "$bin" "results/$bin.txt" \
        ./target/release/"$bin" $SCALE --json "results/$bin.json"
done

names+=(dse_export dump_workload_asm)
# shellcheck disable=SC2086
launch dse_export results/dse_export.txt \
    ./target/release/dse_export $SCALE \
    --store "$STORE" -o results/design_space.json
launch dump_workload_asm results/dump_workload_asm.txt \
    ./target/release/dump_workload_asm results/asm

wait || true
suite_secs=$((SECONDS - suite_start))

failures=()
{
    printf '{\n  "jobs": %s,\n  "total_seconds": %s,\n  "experiments": [\n' \
        "$JOBS" "$suite_secs"
    sep=""
    for name in "${names[@]}"; do
        status=1 secs=0
        if [[ -f "$timing_dir/$name" ]]; then
            read -r status secs < "$timing_dir/$name"
        fi
        ((status == 0)) || failures+=("$name")
        printf '%s    {"name": "%s", "seconds": %s, "ok": %s}' \
            "$sep" "$name" "$secs" "$([[ $status == 0 ]] && echo true || echo false)"
        sep=$',\n'
    done
    printf '\n  ]\n}\n'
} > results/suite_timing.json

if ((${#failures[@]} > 0)); then
    echo "FAILED experiments (${#failures[@]}): ${failures[*]}" >&2
    exit 1
fi
echo "all outputs in results/ (${suite_secs}s total, $JOBS jobs; timing in results/suite_timing.json)"
