#!/usr/bin/env bash
# Regenerates every table, figure and ablation of the paper into
# results/. Pass --test-scale for a fast small-input run.
#
# Each experiment writes results/<name>.txt (the human-readable table);
# binaries that support `--json` also write results/<name>.json with
# the same data points in machine-readable form. Failures are reported
# per experiment and the script exits non-zero if any experiment fails.
set -euo pipefail
cd "$(dirname "$0")"

SCALE="${1:-}"
mkdir -p results
cargo build --release -p tia-bench -p tia-asm

BINS=(
    sec1_tradeoff_modes
    table1_params
    table2_encoding
    table3_workloads
    fig3_breakdown
    fig4_prediction
    fig5_cpi_stacks
    fig6_voltage_frontiers
    fig7_optimization_benefit
    fig8_pareto_designs
    sec3_characterization
    sec4_instruction_memory
    sec54_overheads
    ablation_nested_speculation
    ablation_predictor
    ablation_queue_capacity
)

failures=()
suite_start=$SECONDS

# run_experiment NAME OUTFILE CMD...: runs CMD with stdout captured to
# OUTFILE, reporting wall-clock time, and records (rather than aborts
# on) a failure so one broken experiment doesn't hide the rest.
run_experiment() {
    local name="$1" outfile="$2"
    shift 2
    local start=$SECONDS
    if "$@" > "$outfile"; then
        echo "== $name ($((SECONDS - start))s)"
    else
        local status=$?
        echo "== $name FAILED (exit $status, $((SECONDS - start))s)" >&2
        failures+=("$name")
    fi
}

for bin in "${BINS[@]}"; do
    # shellcheck disable=SC2086
    run_experiment "$bin" "results/$bin.txt" \
        ./target/release/"$bin" $SCALE --json "results/$bin.json"
done

# shellcheck disable=SC2086
run_experiment dse_export results/dse_export.txt \
    ./target/release/dse_export $SCALE -o results/design_space.json
run_experiment dump_workload_asm results/dump_workload_asm.txt \
    ./target/release/dump_workload_asm results/asm

if ((${#failures[@]} > 0)); then
    echo "FAILED experiments (${#failures[@]}): ${failures[*]}" >&2
    exit 1
fi
echo "all outputs in results/ ($((SECONDS - suite_start))s total)"
