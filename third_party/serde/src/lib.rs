//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The build environment has no crate-registry access, so this crate
//! provides API-compatible [`Serialize`]/[`Deserialize`] traits backed
//! by a small JSON-shaped data model ([`Value`]) instead of serde's
//! visitor machinery. The companion `serde_derive` stub generates impls
//! of these traits for `#[derive(Serialize, Deserialize)]`, and the
//! `serde_json` stub renders [`Value`] to and from JSON text. The
//! observable behaviour (externally-tagged enums, `#[serde(default)]`,
//! `#[serde(deny_unknown_fields)]`) matches real serde for every type
//! in this repository.

pub mod value;

pub use value::{DeError, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A type that can render itself into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// A type that can rebuild itself from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// # Errors
    ///
    /// Returns [`DeError`] when `value` does not have the expected
    /// shape (wrong type, missing field, out-of-range number, ...).
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw = value.as_u64().ok_or_else(|| {
                    DeError::new(concat!("expected unsigned integer for ", stringify!($t)))
                })?;
                <$t>::try_from(raw).map_err(|_| {
                    DeError::new(concat!("integer out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw = value.as_i64().ok_or_else(|| {
                    DeError::new(concat!("expected integer for ", stringify!($t)))
                })?;
                <$t>::try_from(raw).map_err(|_| {
                    DeError::new(concat!("integer out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .ok_or_else(|| DeError::new("expected number for f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::new("expected number for f32"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_bool()
            .ok_or_else(|| DeError::new("expected boolean"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::new("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = value
            .as_array()
            .ok_or_else(|| DeError::new("expected array"))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = value
            .as_array()
            .ok_or_else(|| DeError::new("expected array"))?;
        if items.len() != N {
            return Err(DeError::new(format!(
                "expected array of length {N}, found {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| DeError::new("array length mismatch"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        if value.is_null() {
            Ok(None)
        } else {
            T::from_value(value).map(Some)
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}
