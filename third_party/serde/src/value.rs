//! The JSON-shaped data model behind the stub `serde` traits.

use std::fmt;

/// A self-describing value: the intermediate form every
/// `Serialize`/`Deserialize` impl goes through.
///
/// Objects preserve insertion order (they are association lists, not
/// maps), which keeps serialized output deterministic and
/// golden-file-friendly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) => u64::try_from(i).ok(),
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) => i64::try_from(u).ok(),
            Value::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(f as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(f) => Some(f),
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up a key in an object value (`None` for non-objects and
    /// missing keys) — mirrors `serde_json::Value::get`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|entries| find(entries, key))
    }
}

/// Finds `key` in an object's association list.
pub fn find<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// A deserialization failure: the value did not match the expected
/// shape.
#[derive(Debug, Clone)]
pub struct DeError {
    message: String,
}

impl DeError {
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}
