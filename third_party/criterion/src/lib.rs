//! Offline stand-in for the subset of `criterion` this workspace
//! uses: `criterion_group!`/`criterion_main!`, [`Criterion`],
//! [`Criterion::benchmark_group`], `bench_function`, [`Bencher::iter`],
//! and [`black_box`].
//!
//! Instead of criterion's statistical machinery it runs a short warmup
//! followed by a fixed wall-clock measurement window and reports the
//! mean time per iteration — adequate for the relative A/B comparisons
//! the benches in this repository make.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP_ITERS: u32 = 3;
const MEASURE_WINDOW: Duration = Duration::from_millis(300);
const MAX_ITERS: u64 = 100_000;

/// Like real criterion, `--test` (as passed by
/// `cargo bench -- --test`) runs every benchmark exactly once with no
/// warmup or measurement window — a smoke test that the benches still
/// execute, cheap enough for CI.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), &mut f);
        self
    }
}

/// A named family of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id.into()), &mut f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; call
/// [`Bencher::iter`] with the code under test.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if test_mode() {
            let start = Instant::now();
            black_box(routine());
            self.elapsed = start.elapsed();
            self.iterations = 1;
            return;
        }
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iterations = 0u64;
        loop {
            black_box(routine());
            iterations += 1;
            if start.elapsed() >= MEASURE_WINDOW || iterations >= MAX_ITERS {
                break;
            }
        }
        self.elapsed = start.elapsed();
        self.iterations = iterations;
    }

    /// Mean wall-clock nanoseconds per iteration from the last
    /// [`Bencher::iter`] run.
    pub fn mean_nanos(&self) -> f64 {
        if self.iterations == 0 {
            return f64::NAN;
        }
        self.elapsed.as_nanos() as f64 / self.iterations as f64
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, f: &mut F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    let nanos = bencher.mean_nanos();
    let display = if nanos >= 1_000_000.0 {
        format!("{:.3} ms", nanos / 1_000_000.0)
    } else if nanos >= 1_000.0 {
        format!("{:.3} µs", nanos / 1_000.0)
    } else {
        format!("{nanos:.1} ns")
    };
    println!(
        "{id:<50} time: {display}/iter  ({} iterations)",
        bencher.iterations
    );
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
    }
}
