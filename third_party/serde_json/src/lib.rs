//! Offline stand-in for the subset of `serde_json` this workspace
//! uses: [`to_string`], [`to_string_pretty`], [`from_str`], and a
//! re-exported [`Value`] for generic JSON inspection.
//!
//! One deliberate divergence from real `serde_json`: non-finite floats
//! serialize as `null` instead of returning an error, so diagnostic
//! dumps of ratio metrics (which can be NaN on empty runs) never abort
//! a run.

use std::fmt;

pub use serde::Value;

/// A JSON serialization or parse failure.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Infallible for the types in this workspace; the `Result` mirrors
/// the real `serde_json` signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
///
/// # Errors
///
/// Infallible for the types in this workspace; the `Result` mirrors
/// the real `serde_json` signature.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    out.push('\n');
    Ok(out)
}

/// Parses JSON text into any [`serde::Deserialize`] type (including
/// [`Value`] itself).
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON, trailing garbage, or a shape
/// mismatch with the target type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::from_value(&value).map_err(|e| Error::new(e.to_string()))
}

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            out.push_str(&i.to_string());
        }
        Value::UInt(u) => {
            out.push_str(&u.to_string());
        }
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` prints the shortest roundtrip form, keeping a
                // trailing `.0` on integral floats like serde_json.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            write_break(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            write_break(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_break(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!(
                "unexpected character at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid utf-8 in number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}` at offset {start}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            if (0xd800..0xdc00).contains(&code) {
                                // High surrogate: must pair with \uDC00-\uDFFF.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                let combined = 0x10000
                                    + ((code - 0xd800) << 10)
                                    + (low.wrapping_sub(0xdc00) & 0x3ff);
                                out.push(
                                    char::from_u32(combined)
                                        .ok_or_else(|| Error::new("invalid surrogate pair"))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| Error::new("invalid unicode escape"))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )));
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we consumed.
                    let slice = &self.bytes[self.pos - 1..];
                    let text = std::str::from_utf8(slice)
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    let c = text.chars().next().expect("non-empty slice");
                    out.push(c);
                    self.pos += c.len_utf8() - 1;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated unicode escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid unicode escape"))?;
        self.pos += 4;
        u32::from_str_radix(text, 16).map_err(|_| Error::new("invalid unicode escape"))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_value() {
        let text = r#"{"a": [1, -2, 3.5, true, null], "b": {"c": "d\n\"e\""}}"#;
        let value: Value = from_str(text).expect("parse");
        let compact = to_string(&value).expect("write");
        let back: Value = from_str(&compact).expect("reparse");
        assert_eq!(value, back);
        assert_eq!(
            value
                .get("a")
                .and_then(|a| a.as_array())
                .map(<[Value]>::len),
            Some(5)
        );
        assert_eq!(
            value
                .get("b")
                .and_then(|b| b.get("c"))
                .and_then(Value::as_str),
            Some("d\n\"e\"")
        );
    }

    #[test]
    fn pretty_output_is_indented_and_reparseable() {
        let value = Value::Object(vec![
            ("x".to_string(), Value::UInt(1)),
            ("y".to_string(), Value::Array(vec![Value::Bool(false)])),
        ]);
        let pretty = to_string_pretty(&value).expect("write");
        assert!(pretty.contains("\n  \"x\": 1"));
        let back: Value = from_str(&pretty).expect("reparse");
        assert_eq!(value, back);
    }

    #[test]
    fn unicode_escapes_decode() {
        let value: Value = from_str(r#""A😀""#).expect("parse");
        assert_eq!(value.as_str(), Some("A\u{1f600}"));
    }

    #[test]
    fn nonfinite_floats_serialize_as_null() {
        assert_eq!(to_string(&f64::NAN).expect("write"), "null");
    }
}
