//! Offline stand-in for the subset of `rand` 0.8 this workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer ranges, and [`Rng::gen_bool`].
//!
//! The generator is SplitMix64 — deterministic, seedable, and easily
//! good enough for golden-model test-vector generation (the only use
//! in this repository). It is **not** the same stream as the real
//! `StdRng`, which is fine because every consumer here derives its
//! expected values from the same generator instance.

use std::ops::{Range, RangeInclusive};

/// The raw 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                let offset = (rng.next_u64() as u128) % span;
                ((self.start as u128) + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                let offset = (rng.next_u64() as u128) % span;
                ((start as u128) + offset) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (SplitMix64 under the hood).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u8..=20);
            assert!((10..=20).contains(&v));
            let w = rng.gen_range(5usize..6);
            assert_eq!(w, 5);
            let x = rng.gen_range(1..=u32::MAX / 2);
            assert!((1..=u32::MAX / 2).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
