//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Supports the `proptest!` macro (with `#![proptest_config(...)]`),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!`,
//! [`strategy::Strategy`] with `prop_map`, integer and float range
//! strategies, tuple strategies up to arity 12, `any::<T>()`,
//! `prop::sample::select`, and `prop::collection::vec`.
//!
//! Differences from real proptest: no shrinking (a failing case panics
//! with the generated inputs' debug output left to the assertion
//! message), and generation is driven by a deterministic per-test
//! SplitMix64 stream seeded from the test name, so failures reproduce
//! across runs.

use std::fmt::Debug;

pub mod test_runner {
    /// Runner configuration; only `cases` is modelled.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was vetoed by `prop_assume!` — try another.
        Reject(String),
        /// A `prop_assert*!` failed — the property is violated.
        Fail(String),
    }

    impl TestCaseError {
        pub fn reject(message: impl Into<String>) -> Self {
            TestCaseError::Reject(message.into())
        }

        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }
    }
}

/// Deterministic generation stream (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from a test name so every test gets a distinct
    /// but reproducible sequence.
    pub fn from_name(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            state ^= u64::from(byte);
            state = state.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform draw from `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics when `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample an empty range");
        self.next_u64() % bound
    }
}

pub mod strategy {
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (real proptest's
        /// `prop_map`, minus shrinking).
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    let offset = (rng.next_u64() as u128) % span;
                    ((self.start as u128) + offset) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u128) - (start as u128) + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    ((start as u128) + offset) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
        )*};
    }
    impl_signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = rng.next_unit_f64() as $t;
                    self.start + unit * (self.end - self.start)
                }
            }
        )*};
    }
    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11)
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "generate anything" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_unit_f64()
        }
    }

    impl<T: Arbitrary> Arbitrary for Option<T> {
        fn arbitrary(rng: &mut TestRng) -> Self {
            if rng.next_u64() & 1 == 1 {
                Some(T::arbitrary(rng))
            } else {
                None
            }
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    macro_rules! impl_arbitrary_tuple {
        ($($t:ident),+) => {
            impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($t::arbitrary(rng),)+)
                }
            }
        };
    }
    impl_arbitrary_tuple!(A);
    impl_arbitrary_tuple!(A, B);
    impl_arbitrary_tuple!(A, B, C);
    impl_arbitrary_tuple!(A, B, C, D);
    impl_arbitrary_tuple!(A, B, C, D, E);
    impl_arbitrary_tuple!(A, B, C, D, E, F);

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// `any::<T>()` — generate arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use super::TestRng;

    /// The strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    /// Picks uniformly from a non-empty list of values.
    ///
    /// # Panics
    ///
    /// Panics (at generation time) when `items` is empty.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            assert!(!self.items.is_empty(), "select from an empty list");
            let idx = rng.next_below(self.items.len() as u64) as usize;
            self.items[idx].clone()
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size window for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length falls in `size`, with elements
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.next_below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Drives one property: generates up to `config.cases` accepted cases,
/// retrying rejected ones, and panics on the first failure.
///
/// # Panics
///
/// Panics when a case fails or when rejection dominates (more than
/// 1000 rejects per requested case).
pub fn run_cases<F>(config: &test_runner::Config, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), test_runner::TestCaseError>,
{
    let mut rng = TestRng::from_name(name);
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    let budget = u64::from(config.cases) * 1000 + 1000;
    while accepted < u64::from(config.cases) {
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(test_runner::TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= budget,
                    "proptest `{name}`: too many rejected cases ({rejected})"
                );
            }
            Err(test_runner::TestCaseError::Fail(message)) => {
                panic!("proptest `{name}` failed after {accepted} passing cases: {message}");
            }
        }
    }
}

/// Everything a proptest file conventionally glob-imports.
pub mod prelude {
    /// `prop::sample::select`, `prop::collection::vec`, ... — the crate
    /// root under its conventional alias.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $config;
            $crate::run_cases(&__config, stringify!($name), |__rng| {
                $(let $pat = $crate::strategy::Strategy::new_value(&($strategy), __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                __outcome
            });
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__left, __right) => {
                if !(*__left == *__right) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                            stringify!($left),
                            stringify!($right),
                            __left,
                            __right
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__left, __right) => {
                if !(*__left == *__right) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "{}\n  left: {:?}\n right: {:?}",
                            format!($($fmt)+),
                            __left,
                            __right
                        ),
                    ));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__left, __right) => {
                if *__left == *__right {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `{} != {}`\n  both: {:?}",
                            stringify!($left),
                            stringify!($right),
                            __left
                        ),
                    ));
                }
            }
        }
    };
}

/// Keeps the `Debug` bound import used by the assertion macros honest.
#[doc(hidden)]
pub fn __debug_format<T: Debug>(value: &T) -> String {
    format!("{value:?}")
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5usize..=6), c in 0.5f64..1.5) {
            prop_assert!(a < 10);
            prop_assert!(b == 5 || b == 6);
            prop_assert!((0.5..1.5).contains(&c));
        }

        #[test]
        fn assume_filters(v in prop::collection::vec(any::<u8>(), 0..4)) {
            prop_assume!(!v.is_empty());
            prop_assert!(v.len() < 4);
        }

        #[test]
        fn select_and_map(word in prop::sample::select(vec!["a", "bb", "ccc"])
            .prop_map(|s| s.len())) {
            prop_assert!((1..=3).contains(&word));
            prop_assert_ne!(word, 0);
        }
    }
}
