//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to a crate registry, so this
//! proc-macro crate re-implements `#[derive(Serialize, Deserialize)]`
//! for exactly the shapes this workspace uses: non-generic structs
//! (named, tuple/newtype, unit) and non-generic enums whose variants
//! are unit, tuple, or struct-like, serialized in serde's
//! externally-tagged representation. It parses the raw
//! [`proc_macro::TokenStream`] by hand (no `syn`/`quote`) and emits the
//! impl as formatted source text.
//!
//! Supported container attributes: `#[serde(default)]` and
//! `#[serde(deny_unknown_fields)]`. Anything else is rejected loudly at
//! compile time rather than silently mis-serialized.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

/// The parsed shape of a `#[derive]` input item.
struct Item {
    name: String,
    /// Lifetime parameters (e.g. `["'a"]`). Type parameters are
    /// rejected at parse time; lifetimes are fine for `Serialize`.
    lifetimes: Vec<String>,
    /// Container-level `#[serde(...)]` flags (`default`,
    /// `deny_unknown_fields`).
    attrs: Vec<String>,
    kind: Kind,
}

enum Kind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = Item::parse(input);
    item.serialize_impl()
        .parse()
        .expect("serde stub derive emitted invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = Item::parse(input);
    item.deserialize_impl()
        .parse()
        .expect("serde stub derive emitted invalid Deserialize impl")
}

fn ident_of(tree: &TokenTree) -> String {
    match tree {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stub derive expected an identifier, found `{other}`"),
    }
}

fn is_punct(tree: &TokenTree, ch: char) -> bool {
    matches!(tree, TokenTree::Punct(p) if p.as_char() == ch)
}

/// Extracts flags from a `#[serde(...)]` attribute body, given the
/// token stream inside the outer `[...]` brackets.
fn collect_serde_attr(stream: TokenStream, attrs: &mut Vec<String>) {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return, // a doc comment, #[derive], #[default], ...
    }
    let Some(TokenTree::Group(args)) = tokens.get(1) else {
        return;
    };
    for tree in args.stream() {
        match &tree {
            TokenTree::Ident(id) => {
                let flag = id.to_string();
                if flag != "default" && flag != "deny_unknown_fields" {
                    panic!("serde stub derive does not support #[serde({flag})]");
                }
                attrs.push(flag);
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            other => panic!("serde stub derive cannot parse serde attribute token `{other}`"),
        }
    }
}

/// Advances past any `#[...]` attributes, harvesting serde flags.
fn skip_attrs(tokens: &[TokenTree], mut i: usize, attrs: &mut Vec<String>) -> usize {
    while i < tokens.len() && is_punct(&tokens[i], '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
            collect_serde_attr(g.stream(), attrs);
        }
        i += 2;
    }
    i
}

/// Advances past an optional visibility qualifier (`pub`,
/// `pub(crate)`, `pub(in ...)`).
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            if g.delimiter() == Delimiter::Parenthesis {
                i += 1;
            }
        }
    }
    i
}

/// Consumes a type (or other expression) up to a top-level `,`,
/// tracking `<...>` nesting so commas inside generics don't split.
fn skip_until_comma(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle = 0i64;
    while i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[i] {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return i + 1,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut ignored = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i, &mut ignored);
        i = skip_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        fields.push(ident_of(&tokens[i]));
        i += 1; // field name
        i += 1; // `:`
        i = skip_until_comma(&tokens, i);
    }
    if !ignored.is_empty() {
        panic!("serde stub derive does not support field-level serde attributes");
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        let mut ignored = Vec::new();
        i = skip_attrs(&tokens, i, &mut ignored);
        i = skip_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        i = skip_until_comma(&tokens, i);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut ignored = Vec::new();
        i = skip_attrs(&tokens, i, &mut ignored);
        if i >= tokens.len() {
            break;
        }
        let name = ident_of(&tokens[i]);
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        while i < tokens.len() && !is_punct(&tokens[i], ',') {
            i += 1;
        }
        i += 1;
        variants.push(Variant { name, kind });
    }
    variants
}

impl Item {
    fn parse(input: TokenStream) -> Item {
        let tokens: Vec<TokenTree> = input.into_iter().collect();
        let mut attrs = Vec::new();
        let mut i = skip_attrs(&tokens, 0, &mut attrs);
        i = skip_vis(&tokens, i);
        let keyword = ident_of(&tokens[i]);
        i += 1;
        let name = ident_of(&tokens[i]);
        i += 1;
        let mut lifetimes = Vec::new();
        if matches!(&tokens.get(i), Some(t) if is_punct(t, '<')) {
            i += 1;
            while i < tokens.len() && !is_punct(&tokens[i], '>') {
                match &tokens[i] {
                    TokenTree::Punct(p) if p.as_char() == '\'' => {
                        let label = ident_of(&tokens[i + 1]);
                        lifetimes.push(format!("'{label}"));
                        i += 2;
                    }
                    TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
                    _ => panic!(
                        "serde stub derive does not support type-generic type `{name}` \
                         (only lifetime parameters)"
                    ),
                }
            }
            i += 1; // `>`
        }
        let kind = match keyword.as_str() {
            "struct" => match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Kind::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Kind::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Kind::Unit,
            },
            "enum" => match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Kind::Enum(parse_variants(g.stream()))
                }
                _ => panic!("serde stub derive found an enum `{name}` without a body"),
            },
            other => panic!("serde stub derive expected struct or enum, found `{other}`"),
        };
        Item {
            name,
            lifetimes,
            attrs,
            kind,
        }
    }

    /// `""` for non-generic items, `"<'a, 'b>"` otherwise — used for
    /// both the impl generics and the self type.
    fn generics(&self) -> String {
        if self.lifetimes.is_empty() {
            String::new()
        } else {
            format!("<{}>", self.lifetimes.join(", "))
        }
    }

    fn has_attr(&self, flag: &str) -> bool {
        self.attrs.iter().any(|a| a == flag)
    }

    fn serialize_impl(&self) -> String {
        let name = &self.name;
        let mut body = String::new();
        match &self.kind {
            Kind::Unit => body.push_str("::serde::Value::Null"),
            Kind::Tuple(1) => body.push_str("::serde::Serialize::to_value(&self.0)"),
            Kind::Tuple(n) => {
                body.push_str("::serde::Value::Array(::std::vec![");
                for idx in 0..*n {
                    let _ = write!(body, "::serde::Serialize::to_value(&self.{idx}),");
                }
                body.push_str("])");
            }
            Kind::Named(fields) => {
                body.push_str("::serde::Value::Object(::std::vec![");
                for f in fields {
                    let _ = write!(
                        body,
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    );
                }
                body.push_str("])");
            }
            Kind::Enum(variants) => {
                body.push_str("match self {");
                for v in variants {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => {
                            let _ = write!(
                                body,
                                "{name}::{vname} => ::serde::Value::String(\
                                 ::std::string::String::from(\"{vname}\")),"
                            );
                        }
                        VariantKind::Tuple(1) => {
                            let _ = write!(
                                body,
                                "{name}::{vname}(__f0) => ::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from(\"{vname}\"), \
                                 ::serde::Serialize::to_value(__f0))]),"
                            );
                        }
                        VariantKind::Tuple(n) => {
                            let binders: Vec<String> =
                                (0..*n).map(|idx| format!("__f{idx}")).collect();
                            let _ = write!(
                                body,
                                "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Array(::std::vec![",
                                binders.join(", ")
                            );
                            for b in &binders {
                                let _ = write!(body, "::serde::Serialize::to_value({b}),");
                            }
                            body.push_str("]))]),");
                        }
                        VariantKind::Named(fields) => {
                            let _ = write!(
                                body,
                                "{name}::{vname} {{ {} }} => ::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Object(::std::vec![",
                                fields.join(", ")
                            );
                            for f in fields {
                                let _ = write!(
                                    body,
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f})),"
                                );
                            }
                            body.push_str("]))]),");
                        }
                    }
                }
                body.push('}');
            }
        }
        let generics = self.generics();
        format!(
            "#[automatically_derived]\n\
             #[allow(clippy::all)]\n\
             impl{generics} ::serde::Serialize for {name}{generics} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
             }}\n"
        )
    }

    fn deserialize_impl(&self) -> String {
        let name = &self.name;
        assert!(
            self.lifetimes.is_empty(),
            "serde stub derive cannot deserialize borrowed type `{name}`"
        );
        let body = match &self.kind {
            Kind::Unit => format!("{{ let _ = __v; ::std::result::Result::Ok({name}) }}"),
            Kind::Tuple(1) => {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
            }
            Kind::Tuple(n) => {
                let mut s = format!(
                    "{{ let __arr = __v.as_array().ok_or_else(|| \
                     ::serde::DeError::new(\"expected array for {name}\"))?;\
                     if __arr.len() != {n} {{ return ::std::result::Result::Err(\
                     ::serde::DeError::new(\"wrong tuple length for {name}\")); }}\
                     ::std::result::Result::Ok({name}("
                );
                for idx in 0..*n {
                    let _ = write!(s, "::serde::Deserialize::from_value(&__arr[{idx}])?,");
                }
                s.push_str(")) }");
                s
            }
            Kind::Named(fields) => self.deserialize_named(name, fields),
            Kind::Enum(variants) => Self::deserialize_enum(name, variants),
        };
        format!(
            "#[automatically_derived]\n\
             #[allow(clippy::all)]\n\
             impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
             }}\n"
        )
    }

    fn deserialize_named(&self, name: &str, fields: &[String]) -> String {
        let mut s = format!(
            "{{ let __obj = __v.as_object().ok_or_else(|| \
             ::serde::DeError::new(\"expected object for {name}\"))?;"
        );
        if self.has_attr("deny_unknown_fields") {
            let arms = fields
                .iter()
                .map(|f| format!("\"{f}\""))
                .collect::<Vec<_>>()
                .join(" | ");
            let _ = write!(
                s,
                "for (__k, _) in __obj.iter() {{ match __k.as_str() {{ {arms} => {{}}, \
                 __other => return ::std::result::Result::Err(::serde::DeError::new(\
                 &format!(\"unknown field `{{__other}}` in {name}\"))), }} }}"
            );
        }
        if self.has_attr("default") {
            s.push_str(&format!(
                "let mut __out: {name} = ::std::default::Default::default();"
            ));
            for f in fields {
                let _ = write!(
                    s,
                    "if let ::std::option::Option::Some(__x) = \
                     ::serde::value::find(__obj, \"{f}\") \
                     {{ __out.{f} = ::serde::Deserialize::from_value(__x)?; }}"
                );
            }
            s.push_str("::std::result::Result::Ok(__out) }");
        } else {
            let _ = write!(s, "::std::result::Result::Ok({name} {{");
            for f in fields {
                let _ = write!(
                    s,
                    "{f}: match ::serde::value::find(__obj, \"{f}\") {{ \
                     ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?, \
                     ::std::option::Option::None => return ::std::result::Result::Err(\
                     ::serde::DeError::new(\"missing field `{f}` in {name}\")), }},"
                );
            }
            s.push_str("}) }");
        }
        s
    }

    fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
        let mut unit_arms = String::new();
        let mut tagged_arms = String::new();
        for v in variants {
            let vname = &v.name;
            match &v.kind {
                VariantKind::Unit => {
                    let _ = write!(
                        unit_arms,
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
                    );
                }
                VariantKind::Tuple(1) => {
                    let _ = write!(
                        tagged_arms,
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(__inner)?)),"
                    );
                }
                VariantKind::Tuple(n) => {
                    let mut arm = format!(
                        "\"{vname}\" => {{ let __arr = __inner.as_array().ok_or_else(|| \
                         ::serde::DeError::new(\"expected array for {name}::{vname}\"))?;\
                         if __arr.len() != {n} {{ return ::std::result::Result::Err(\
                         ::serde::DeError::new(\"wrong tuple length for {name}::{vname}\")); }}\
                         ::std::result::Result::Ok({name}::{vname}("
                    );
                    for idx in 0..*n {
                        let _ = write!(arm, "::serde::Deserialize::from_value(&__arr[{idx}])?,");
                    }
                    arm.push_str(")) }");
                    tagged_arms.push_str(&arm);
                }
                VariantKind::Named(fields) => {
                    let mut arm = format!(
                        "\"{vname}\" => {{ let __obj = __inner.as_object().ok_or_else(|| \
                         ::serde::DeError::new(\"expected object for {name}::{vname}\"))?;\
                         ::std::result::Result::Ok({name}::{vname} {{"
                    );
                    for f in fields {
                        let _ = write!(
                            arm,
                            "{f}: match ::serde::value::find(__obj, \"{f}\") {{ \
                             ::std::option::Option::Some(__x) => \
                             ::serde::Deserialize::from_value(__x)?, \
                             ::std::option::Option::None => return \
                             ::std::result::Result::Err(::serde::DeError::new(\
                             \"missing field `{f}` in {name}::{vname}\")), }},"
                        );
                    }
                    arm.push_str("}) }");
                    tagged_arms.push_str(&arm);
                }
            }
        }
        format!(
            "match __v {{\
                 ::serde::Value::String(__s) => match __s.as_str() {{\
                     {unit_arms}\
                     __other => ::std::result::Result::Err(::serde::DeError::new(\
                     &format!(\"unknown variant `{{__other}}` of {name}\"))),\
                 }},\
                 ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\
                     let (__tag, __inner) = &__entries[0];\
                     match __tag.as_str() {{\
                         {tagged_arms}\
                         __other => ::std::result::Result::Err(::serde::DeError::new(\
                         &format!(\"unknown variant `{{__other}}` of {name}\"))),\
                     }}\
                 }},\
                 _ => ::std::result::Result::Err(::serde::DeError::new(\
                 \"expected string or single-key object for {name}\")),\
             }}"
        )
    }
}
